//===- Simulator.cpp - ITA functional + timing simulator ----------------------===//

#include "arch/Simulator.h"

#include "interp/Interpreter.h" // layout constants
#include "support/Error.h"
#include "support/PagedMemory.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

using namespace srp;
using namespace srp::arch;
using namespace srp::codegen;

namespace {

/// One simulated run.
class Machine {
public:
  Machine(const MModule &M, const SimConfig &Config)
      : M(M), Config(Config), IssueW(Config.IssueWidth),
        MaxInstrs(Config.MaxInstructions), Table(Config.Alat, Config.Faults),
        Mem(Config.Memory) {}

  SimResult run();

private:
  // (hot-loop constants are latched in the constructor)
  struct ReturnPoint {
    const MFunction *F;
    unsigned Block;
    unsigned Index;
    unsigned StackedRegs; ///< callee's frame for the RSE pop.
    /// The IA-64 register stack renames r32..r127 / f32..f127 per frame;
    /// a flat register file must save and restore them instead. Only the
    /// window the callee can actually write ([FirstStackedReg,
    /// StackedRegHigh) per file, see MFunction) needs copying — regs
    /// above it are untouched across the call by induction. The saved
    /// words live in the pooled SaveArea starting at SavedBase, so calls
    /// never allocate. The RSE *timing* of the same mechanism is charged
    /// by rseCall/rseReturn.
    unsigned IntHigh;
    unsigned FpHigh;
    size_t SavedBase;
  };

  void trap(std::string Message) {
    if (!Trapped) {
      Trapped = true;
      TrapMessage = std::move(Message);
    }
  }

  uint64_t read64(uint64_t Addr) {
    if (Addr % 8 != 0) {
      trap(formatString("unaligned read at 0x%llx",
                        static_cast<unsigned long long>(Addr)));
      return 0;
    }
    return Memory.load(Addr >> 3);
  }

  void write64(uint64_t Addr, uint64_t Bits) {
    if (Addr % 8 != 0) {
      trap(formatString("unaligned write at 0x%llx",
                        static_cast<unsigned long long>(Addr)));
      return;
    }
    Memory.store(Addr >> 3, Bits);
  }

  uint64_t reg(unsigned R) const {
    assert(R < Regs.size() && "register id out of range");
    return R == RegZero ? 0 : Regs[R];
  }

  void setReg(unsigned R, uint64_t V, uint64_t ReadyAt, bool FromLoad) {
    assert(R < Regs.size() && "register id out of range");
    if (R == RegZero)
      return;
    Regs[R] = V;
    Ready[R] = ReadyAt;
    WriteSeq[R] = RetSeq;
    LoadProduced[R] = FromLoad;
    if (ReadyAt > PendingUntil)
      PendingUntil = ReadyAt;
  }

  static bool isStackedIdx(unsigned R) {
    return (R - FirstStackedReg) < NumStackedRegs ||
           (R - (FpRegBase + FirstStackedReg)) < NumStackedRegs;
  }

  /// The ready cycle issue() must observe for source register \p R.
  /// Architecturally every return overwrites Ready of the *whole*
  /// stacked file with the return cycle (a pending caller-side load
  /// latency does not survive the call); doing that as 192 stores per
  /// Ret dominated the simulator, so Ret instead bumps RetSeq and a
  /// stacked register not written since (WriteSeq stale) reads the
  /// recorded LastRetCycle.
  uint64_t readyOf(unsigned R) const {
    if (isStackedIdx(R) && WriteSeq[R] != RetSeq)
      return LastRetCycle;
    return Ready[R];
  }

  /// Folds one source register into the issue dependence scan. NoReg and
  /// virtual-register sentinels fall outside [0, FirstVirtualReg) and are
  /// skipped; RegZero needs no special case because setReg never writes
  /// slot 0, so Ready[0] and LoadProduced[0] stay zero.
  void srcDep(unsigned R, uint64_t &Avail, bool &LoadLimited) {
    if (R >= FirstVirtualReg)
      return;
    uint64_t Rdy = readyOf(R);
    if (Rdy > Avail) {
      Avail = Rdy;
      LoadLimited = LoadProduced[R];
    } else if (Rdy == Avail && Avail > Cycle && LoadProduced[R]) {
      LoadLimited = true;
    }
  }

  /// Source-operand shape per opcode, mirroring MInstr::sources():
  /// 0 = none, 1 = store (Rs1, Rs3), 2 = select (Rs1, Rs2, Rs3),
  /// 3 = default (Rs1, and Rs2 unless the immediate form). issue() runs
  /// once per simulated instruction; the byte table replaces a second
  /// opcode switch over the same instruction.
  static constexpr auto SrcShape = [] {
    std::array<uint8_t, static_cast<size_t>(MOp::Nop) + 1> T{};
    for (auto &V : T)
      V = 3;
    for (MOp Op : {MOp::MovI, MOp::Br, MOp::Ret, MOp::Nop, MOp::Call})
      T[static_cast<size_t>(Op)] = 0;
    T[static_cast<size_t>(MOp::St)] = 1;
    T[static_cast<size_t>(MOp::StA)] = 1;
    T[static_cast<size_t>(MOp::Sel)] = 2;
    return T;
  }();

  /// Advances the issue clock over source dependences and a slot.
  void issue(const MInstr &I) {
    // No register in the whole file has a ready cycle beyond the clock
    // (PendingUntil is a monotone watermark over every setReg, and
    // LastRetCycle never exceeds Cycle), so the dependence scan cannot
    // move Avail and is skipped. Pure ALU stretches stay on this path.
    if (Cycle >= PendingUntil) {
      ++SlotsUsed;
      if (SlotsUsed >= IssueW) {
        ++Cycle;
        SlotsUsed = 0;
      }
      ++Counters.Instructions;
      return;
    }
    uint64_t Avail = Cycle;
    bool LoadLimited = false;
    switch (SrcShape[static_cast<size_t>(I.Op)]) {
    case 0:
      break;
    case 1:
      srcDep(I.Rs1, Avail, LoadLimited);
      srcDep(I.Rs3, Avail, LoadLimited);
      break;
    case 2:
      srcDep(I.Rs1, Avail, LoadLimited);
      srcDep(I.Rs2, Avail, LoadLimited);
      srcDep(I.Rs3, Avail, LoadLimited);
      break;
    default:
      srcDep(I.Rs1, Avail, LoadLimited);
      if (!I.HasImm)
        srcDep(I.Rs2, Avail, LoadLimited);
      break;
    }
    if (Avail > Cycle) {
      if (LoadLimited)
        Counters.DataAccessCycles += Avail - Cycle;
      Cycle = Avail;
      SlotsUsed = 0;
    }
    ++SlotsUsed;
    if (SlotsUsed >= IssueW) {
      ++Cycle;
      SlotsUsed = 0;
    }
    ++Counters.Instructions;
  }

  void takenBranch(unsigned Penalty) {
    Cycle += Penalty;
    SlotsUsed = 0;
    ++Counters.TakenBranches;
  }

  /// RSE bookkeeping for a call into a frame of \p N stacked registers.
  void rseCall(unsigned N) {
    RseTotal += N;
    if (RseTotal > RseSpilled + NumStackedRegs) {
      uint64_t D = RseTotal - RseSpilled - NumStackedRegs;
      RseSpilled += D;
      Counters.RseSpills += D;
      Counters.RseCycles += D * Config.RsePerRegCycles;
    }
  }

  void rseReturn(unsigned N) {
    RseTotal -= N;
    if (RseSpilled > RseTotal) {
      uint64_t D = RseSpilled - RseTotal;
      RseSpilled -= D;
      Counters.RseFills += D;
      Counters.RseCycles += D * Config.RsePerRegCycles;
    }
  }

  uint64_t performLoad(uint64_t Addr, bool Fp) {
    ++Counters.RetiredLoads;
    LastLoadLatency = Mem.loadLatency(Addr, Fp);
    return read64(Addr);
  }

  void execute(const MInstr &I);

  const MModule &M;
  const SimConfig &Config;
  const unsigned IssueW; ///< Config.IssueWidth, read once per instruction.
  const uint64_t MaxInstrs; ///< Config.MaxInstructions, checked per instruction.
  Alat Table;
  MemoryHierarchy Mem;

  std::vector<uint64_t> Regs = std::vector<uint64_t>(FirstVirtualReg, 0);
  std::vector<uint64_t> Ready = std::vector<uint64_t>(FirstVirtualReg, 0);
  /// uint8_t, not bool: issue() reads and setReg() writes this once per
  /// simulated instruction, and vector<bool>'s bit packing costs a
  /// read-modify-write on the hot path.
  std::vector<uint8_t> LoadProduced = std::vector<uint8_t>(FirstVirtualReg, 0);
  /// Lazy whole-file Ready overwrite on Ret: see readyOf().
  std::vector<uint64_t> WriteSeq = std::vector<uint64_t>(FirstVirtualReg, 0);
  uint64_t RetSeq = 0;
  uint64_t LastRetCycle = 0;
  /// Highest ready cycle ever written by setReg; while Cycle is at or
  /// past it, issue()'s dependence scan is provably a no-op.
  uint64_t PendingUntil = 0;
  PagedMemory Memory;
  uint64_t HeapTop = interp::layout::HeapBase;

  const MFunction *CurF = nullptr;
  unsigned CurBlock = 0;
  unsigned CurIndex = 0;
  std::vector<ReturnPoint> CallStack;
  /// Pooled stacked-register save area; ReturnPoint::SavedBase indexes
  /// into it. Grows once to the deepest call chain's footprint.
  std::vector<uint64_t> SaveArea;

  uint64_t Cycle = 0;
  unsigned SlotsUsed = 0;
  unsigned LastLoadLatency = 0;
  uint64_t RseTotal = 0;
  uint64_t RseSpilled = 0;

  PerfCounters Counters;
  std::vector<std::string> Output;
  bool Trapped = false;
  bool Finished = false;
  std::string TrapMessage;
};

void Machine::execute(const MInstr &I) {
  auto S1 = [&] { return reg(I.Rs1); };
  auto S2 = [&] { return I.HasImm ? static_cast<uint64_t>(I.Imm)
                                  : reg(I.Rs2); };
  auto Int = [](int64_t V) { return static_cast<uint64_t>(V); };
  auto Dbl = [](double V) { return std::bit_cast<uint64_t>(V); };
  auto AsI = [](uint64_t V) { return static_cast<int64_t>(V); };
  auto AsD = [](uint64_t V) { return std::bit_cast<double>(V); };

  issue(I);

  auto SetAlu = [&](uint64_t V, unsigned Latency = 1) {
    setReg(I.Rd, V, Cycle + Latency - 1, false);
  };

  switch (I.Op) {
  case MOp::MovI:
    SetAlu(static_cast<uint64_t>(I.Imm));
    break;
  case MOp::Mov:
    SetAlu(S1());
    break;
  case MOp::Add:
    SetAlu(Int(AsI(S1()) + AsI(S2())));
    break;
  case MOp::Sub:
    SetAlu(Int(AsI(S1()) - AsI(S2())));
    break;
  case MOp::Mul:
    SetAlu(Int(AsI(S1()) * AsI(S2())), Config.MulLatency);
    break;
  case MOp::Div:
    SetAlu(AsI(S2()) == 0 ? 0 : Int(AsI(S1()) / AsI(S2())),
           Config.DivLatency);
    break;
  case MOp::Rem:
    SetAlu(AsI(S2()) == 0 ? 0 : Int(AsI(S1()) % AsI(S2())),
           Config.DivLatency);
    break;
  case MOp::And:
    SetAlu(S1() & S2());
    break;
  case MOp::Or:
    SetAlu(S1() | S2());
    break;
  case MOp::Xor:
    SetAlu(S1() ^ S2());
    break;
  case MOp::Shl:
    SetAlu(S1() << (S2() & 63));
    break;
  case MOp::Shr:
    SetAlu(S1() >> (S2() & 63));
    break;
  case MOp::ShlAdd:
    SetAlu((S1() << 3) + (I.HasImm ? static_cast<uint64_t>(I.Imm)
                                   : reg(I.Rs2)));
    break;
  case MOp::CmpEq:
    SetAlu(AsI(S1()) == AsI(S2()));
    break;
  case MOp::CmpNe:
    SetAlu(AsI(S1()) != AsI(S2()));
    break;
  case MOp::CmpLt:
    SetAlu(AsI(S1()) < AsI(S2()));
    break;
  case MOp::CmpLe:
    SetAlu(AsI(S1()) <= AsI(S2()));
    break;
  case MOp::FAdd:
    SetAlu(Dbl(AsD(S1()) + AsD(S2())), Config.FpLatency);
    break;
  case MOp::FSub:
    SetAlu(Dbl(AsD(S1()) - AsD(S2())), Config.FpLatency);
    break;
  case MOp::FMul:
    SetAlu(Dbl(AsD(S1()) * AsD(S2())), Config.FpLatency);
    break;
  case MOp::FDiv:
    SetAlu(Dbl(AsD(S2()) == 0.0 ? 0.0 : AsD(S1()) / AsD(S2())),
           Config.FpDivLatency);
    break;
  case MOp::FCmpLt:
    SetAlu(AsD(S1()) < AsD(S2()), Config.FpLatency);
    break;
  case MOp::ICvtF:
    SetAlu(Dbl(static_cast<double>(AsI(S1()))), Config.FpLatency);
    break;
  case MOp::FCvtI:
    SetAlu(Int(static_cast<int64_t>(AsD(S1()))), Config.FpLatency);
    break;
  case MOp::Sel:
    SetAlu(S1() != 0 ? reg(I.Rs2) : reg(I.Rs3));
    break;

  case MOp::Ld: {
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    uint64_t V = performLoad(Addr, I.FpVal);
    setReg(I.Rd, V, Cycle + LastLoadLatency - 1, true);
    break;
  }
  case MOp::LdA:
  case MOp::LdSA: {
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    uint64_t V = performLoad(Addr, I.FpVal);
    Table.allocate(I.Rd, Addr);
    setReg(I.Rd, V, Cycle + LastLoadLatency - 1, true);
    break;
  }
  case MOp::LdCClr:
  case MOp::LdCNc: {
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    ++Counters.AlatChecks;
    if (Table.check(I.Rd, Addr, /*Clear=*/I.Op == MOp::LdCClr)) {
      // Hit: the register already holds the memory value; no latency.
      // (Functionally we refresh it, which is a no-op on a hit.)
      Regs[I.Rd] = read64(Addr);
      break;
    }
    ++Counters.AlatCheckFailures;
    uint64_t V = performLoad(Addr, I.FpVal);
    if (I.Op == MOp::LdCNc)
      Table.allocate(I.Rd, Addr);
    setReg(I.Rd, V, Cycle + LastLoadLatency - 1, true);
    break;
  }
  case MOp::St:
  case MOp::StA: {
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    write64(Addr, reg(I.Rs3));
    Mem.store(Addr);
    Table.storeNotify(Addr);
    ++Counters.RetiredStores;
    if (I.Op == MOp::StA) {
      if (!Config.UseStA) {
        trap("st.a executed on a machine without the st.a extension");
        break;
      }
      // The §2.5 extension: the store itself allocates the entry.
      Table.allocate(I.Rs2, Addr);
    }
    break;
  }
  case MOp::InvalaE:
    Table.invalidateRegister(I.Rs1);
    break;
  case MOp::AllocHeap: {
    int64_t Count = I.HasImm ? I.Imm : AsI(S1());
    if (Count < 1)
      Count = 1;
    uint64_t Bytes = (static_cast<uint64_t>(Count) * 8 + 63) & ~63ULL;
    SetAlu(HeapTop);
    HeapTop += Bytes;
    break;
  }
  case MOp::Print: {
    uint64_t Bits = reg(I.Rs1);
    if (I.FpVal)
      Output.push_back(formatString("%.6g", AsD(Bits)));
    else
      Output.push_back(formatString(
          "%lld", static_cast<long long>(AsI(Bits))));
    break;
  }

  case MOp::Br:
    CurBlock = I.Target;
    CurIndex = 0;
    takenBranch(Config.TakenBranchPenalty);
    return;
  case MOp::BrCond:
    if (S1() != 0) {
      CurBlock = I.Target;
      takenBranch(Config.TakenBranchPenalty);
    } else {
      CurBlock = I.FalseTarget;
      takenBranch(Config.TakenBranchPenalty);
    }
    CurIndex = 0;
    return;
  case MOp::ChkA:
    ++Counters.AlatChecks;
    if (Table.checkRegister(I.Rs1)) {
      CurBlock = I.Target;
    } else {
      ++Counters.AlatCheckFailures;
      ++Counters.ChkARecoveries;
      Cycle += Config.ChkMissPenalty;
      SlotsUsed = 0;
      CurBlock = I.Recovery;
    }
    CurIndex = 0;
    return;
  case MOp::Call: {
    if (CallStack.size() >= 512) {
      trap("call depth limit exceeded");
      return;
    }
    ReturnPoint RP{CurF,
                   I.Target,
                   0,
                   I.Callee->StackedRegsUsed,
                   I.Callee->StackedRegHigh,
                   I.Callee->FpRegHigh,
                   SaveArea.size()};
    // Bulk range inserts: one capacity check and a memmove per window,
    // not a push_back per register.
    SaveArea.insert(SaveArea.end(), Regs.data() + FirstStackedReg,
                    Regs.data() + RP.IntHigh);
    SaveArea.insert(SaveArea.end(), Regs.data() + FpRegBase + FirstStackedReg,
                    Regs.data() + RP.FpHigh);
    CallStack.push_back(RP);
    rseCall(I.Callee->StackedRegsUsed);
    CurF = I.Callee;
    CurBlock = 0;
    CurIndex = 0;
    takenBranch(Config.CallPenalty);
    return;
  }
  case MOp::Ret: {
    if (CallStack.empty()) {
      Finished = true;
      return;
    }
    ReturnPoint RP = CallStack.back();
    CallStack.pop_back();
    rseReturn(RP.StackedRegs);
    const uint64_t *Src = SaveArea.data() + RP.SavedBase;
    std::copy(Src, Src + (RP.IntHigh - FirstStackedReg),
              Regs.data() + FirstStackedReg);
    Src += RP.IntHigh - FirstStackedReg;
    std::copy(Src, Src + (RP.FpHigh - (FpRegBase + FirstStackedReg)),
              Regs.data() + FpRegBase + FirstStackedReg);
    SaveArea.resize(RP.SavedBase);
    // The return makes every stacked register architecturally current
    // again (Ready := this cycle) — recorded lazily, see readyOf().
    ++RetSeq;
    LastRetCycle = Cycle;
    CurF = RP.F;
    CurBlock = RP.Block;
    CurIndex = RP.Index;
    takenBranch(Config.CallPenalty);
    return;
  }
  case MOp::Nop:
    break;
  }
  ++CurIndex;
}

SimResult Machine::run() {
  SimResult Result;
  const MFunction *Main = M.findFunction("main");
  if (!Main) {
    Result.Error = "module has no main function";
    return Result;
  }
  Regs[RegSP] = interp::layout::StackBase;
  Regs[RegFP] = interp::layout::StackBase;
  CurF = Main;
  rseCall(Main->StackedRegsUsed);
  CallStack.reserve(512);
  SaveArea.reserve(512 * 2 * NumStackedRegs / 8);

  while (!Finished && !Trapped) {
    if (CurBlock >= CurF->numBlocks() ||
        CurIndex >= CurF->block(CurBlock).Instrs.size()) {
      trap(formatString("fell off block b%u of %s", CurBlock,
                        CurF->getName().c_str()));
      break;
    }
    // Run straight-line code without refetching the block per
    // instruction; execute() bumps CurIndex for fall-through ops and
    // rewrites CurF/CurBlock/CurIndex on control transfers, which drops
    // us back to the outer loop. The instruction budget stays checked
    // per instruction — the trap point is program-visible.
    const MBlock &B = CurF->block(CurBlock);
    const MInstr *Code = B.Instrs.data();
    const size_t N = B.Instrs.size();
    const MFunction *F0 = CurF;
    const unsigned B0 = CurBlock;
    while (CurIndex < N && !Finished && !Trapped) {
      if (Counters.Instructions >= MaxInstrs) {
        trap("instruction budget exhausted");
        break;
      }
      execute(Code[CurIndex]);
      if (CurF != F0 || CurBlock != B0)
        break;
    }
  }

  Result.Output = std::move(Output);
  if (Trapped) {
    Result.Error = TrapMessage;
    return Result;
  }
  Result.Ok = true;
  Result.ExitValue = static_cast<int64_t>(Regs[RegRetInt]);
  Counters.Cycles = Cycle;
  Counters.L1Hits = Mem.l1Hits();
  Counters.L1Misses = Mem.l1Misses();
  Counters.L2Hits = Mem.l2Hits();
  Counters.L2Misses = Mem.l2Misses();
  Result.Counters = Counters;
  Result.Alat = Table.stats();
  return Result;
}

} // namespace

SimResult srp::arch::simulate(const codegen::MModule &M,
                              const SimConfig &Config) {
  Machine Mach(M, Config);
  return Mach.run();
}
