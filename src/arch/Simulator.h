//===- Simulator.h - ITA functional + timing simulator -----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes ITA machine code functionally while charging an in-order,
/// issue-width-limited timing model with the performance effects the
/// paper's evaluation measures:
///
///  * loads pay cache-hierarchy latency (int L1 2cy, FP from L2 9cy);
///    consumers stall until the value is ready, and stall cycles caused
///    by loads accumulate into DataAccessCycles (the "data access cycles"
///    series of Figure 8);
///  * checking loads cost an issue slot and nothing else on an ALAT hit;
///    on a miss they become real loads (retired-load counter included);
///  * chk.a costs a recovery trip (trap + branches + the recovery code)
///    on a miss;
///  * the RSE spills/fills stacked registers when call chains overflow
///    the 96-register physical stack (Figure 11's counter);
///  * print output is formatted exactly like the IR interpreter's, so a
///    simulated binary is differentially comparable against the oracle.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ARCH_SIMULATOR_H
#define SRP_ARCH_SIMULATOR_H

#include "arch/Alat.h"
#include "arch/Caches.h"
#include "codegen/MIR.h"

#include <string>
#include <vector>

namespace srp::arch {

/// Timing and machine-configuration knobs.
struct SimConfig {
  AlatConfig Alat;
  /// Optional ALAT fault-injection schedule (FaultPlan.h); disabled by
  /// default, in which case the simulation is bit-identical to a build
  /// without the fault layer.
  FaultPlan Faults;
  MemoryConfig Memory;
  unsigned IssueWidth = 6;          ///< Two bundles of three.
  unsigned TakenBranchPenalty = 1;  ///< Pipeline bubble per taken branch.
  unsigned CallPenalty = 2;
  unsigned ChkMissPenalty = 15;     ///< Light-weight trap plus branches.
  unsigned MulLatency = 3;
  unsigned DivLatency = 12;
  unsigned FpLatency = 4;           ///< FP ALU (Itanium FMAC ~ 4-5).
  unsigned FpDivLatency = 30;
  unsigned RsePerRegCycles = 2;     ///< Mandatory RSE spill/fill cost.
  uint64_t MaxInstructions = 400'000'000;
  bool UseStA = true;               ///< st.a implemented (else it traps).
};

/// Architecture event counters (the pfmon substitute).
struct PerfCounters {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t RetiredLoads = 0;   ///< ld/ld.a/ld.sa plus checking-load misses.
  uint64_t RetiredStores = 0;
  uint64_t DataAccessCycles = 0;
  uint64_t AlatChecks = 0;     ///< ld.c + chk.a executed.
  uint64_t AlatCheckFailures = 0;
  uint64_t ChkARecoveries = 0;
  uint64_t RseCycles = 0;
  uint64_t RseSpills = 0;
  uint64_t RseFills = 0;
  uint64_t TakenBranches = 0;
  uint64_t L1Hits = 0, L1Misses = 0, L2Hits = 0, L2Misses = 0;
};

/// Outcome of one simulated run.
struct SimResult {
  bool Ok = false;
  std::string Error;
  std::vector<std::string> Output;
  int64_t ExitValue = 0;
  PerfCounters Counters;
  AlatStats Alat;
};

/// Runs \p M (register-allocated) from its main function.
SimResult simulate(const codegen::MModule &M, const SimConfig &Config);

} // namespace srp::arch

#endif // SRP_ARCH_SIMULATOR_H
