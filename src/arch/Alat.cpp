//===- Alat.cpp - Advanced Load Address Table model ---------------------------===//

#include "arch/Alat.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

static bool traceOn() {
  // Written once under the magic-static lock, read-only afterwards.
  static bool On = getenv("SRP_ALAT_TRACE") != nullptr;
  return On;
}
// Each pipeline worker (core::runExperiments) simulates its own ALATs
// concurrently, so the debug-trace budget is per-thread.
static thread_local int TraceBudget = 400;

using namespace srp::arch;

Alat::Alat(const AlatConfig &Config) : Config(Config) {
  assert(Config.Ways >= 1 && Config.Entries >= Config.Ways &&
         "degenerate ALAT geometry");
  NumSets = Config.Entries / Config.Ways;
  if (NumSets == 0)
    NumSets = 1;
  Table.assign(NumSets * Config.Ways, Entry());
  Trace = traceOn();
}

Alat::Alat(const AlatConfig &Config, const FaultPlan &Plan) : Alat(Config) {
  Faults = Plan;
  FaultRng = RNG(Plan.Seed);
}

// Fault injection only ever drops entries or forces misses (see
// FaultPlan.h), so a correct recovery discipline keeps the simulated
// program's output unchanged under any schedule. The RNG is drawn from
// on every eligible event regardless of outcome, so the schedule is a
// pure function of (plan seed, event sequence) and replays exactly.

void Alat::dropRandomValidEntry(uint64_t &Counter) {
  unsigned Valid = numValidEntries();
  if (Valid == 0)
    return;
  unsigned Pick = static_cast<unsigned>(FaultRng.nextBelow(Valid));
  for (Entry &E : Table) {
    if (!E.Valid)
      continue;
    if (Pick-- == 0) {
      E.Valid = false;
      noteDropped();
      ++Counter;
      return;
    }
  }
}

void Alat::faultSpuriousInvalidate() {
  if (Faults.SpuriousInvalidateProb <= 0.0)
    return;
  if (FaultRng.nextBool(Faults.SpuriousInvalidateProb))
    dropRandomValidEntry(Stats.Faults.SpuriousInvalidations);
}

void Alat::faultCapacitySqueeze() {
  if (Faults.CapacityLimit == 0)
    return;
  while (numValidEntries() > Faults.CapacityLimit)
    dropRandomValidEntry(Stats.Faults.CapacityDrops);
}

bool Alat::faultForcesMiss() {
  return Faults.ForcedMissProb > 0.0 &&
         FaultRng.nextBool(Faults.ForcedMissProb);
}

Alat::Entry *Alat::findEntry(unsigned Reg) {
  unsigned Set = setOf(Reg);
  for (unsigned W = 0; W < Config.Ways; ++W) {
    Entry &E = Table[Set * Config.Ways + W];
    if (E.Valid && E.Reg == Reg)
      return &E;
  }
  return nullptr;
}

const Alat::Entry *Alat::findEntry(unsigned Reg) const {
  return const_cast<Alat *>(this)->findEntry(Reg);
}

void Alat::allocate(unsigned Reg, uint64_t Addr) {
  ++Stats.Allocations;
  if (Trace && TraceBudget-- > 0)
    fprintf(stderr, "alloc r%u @%llx\n", Reg, (unsigned long long)Addr);
  if (Entry *E = findEntry(Reg)) {
    E->Addr = Addr;
    TagBloom |= uint64_t(1) << bloomBit(partialTag(Addr));
    if (Faults.enabled()) {
      faultSpuriousInvalidate();
      faultCapacitySqueeze();
    }
    return;
  }
  unsigned Set = setOf(Reg);
  // Prefer an invalid way; otherwise evict the first way (the table has
  // no use-ordering; entries are short-lived).
  Entry *Victim = nullptr;
  for (unsigned W = 0; W < Config.Ways; ++W) {
    Entry &E = Table[Set * Config.Ways + W];
    if (!E.Valid) {
      Victim = &E;
      break;
    }
  }
  if (!Victim) {
    Victim = &Table[Set * Config.Ways];
    ++Stats.CapacityEvictions;
  }
  if (Trace && Victim->Valid && TraceBudget > 0)
    fprintf(stderr, "evict r%u for r%u\n", Victim->Reg, Reg);
  if (!Victim->Valid)
    ++NumValid;
  Victim->Valid = true;
  Victim->Reg = Reg;
  Victim->Addr = Addr;
  TagBloom |= uint64_t(1) << bloomBit(partialTag(Addr));
  if (Faults.enabled()) {
    faultSpuriousInvalidate();
    faultCapacitySqueeze();
  }
}

void Alat::storeNotifyScan(uint64_t Addr, uint64_t Tag) {
  for (Entry &E : Table) {
    if (!E.Valid || partialTag(E.Addr) != Tag)
      continue;
    E.Valid = false;
    noteDropped();
    ++Stats.Invalidations;
    if (Trace && TraceBudget-- > 0)
      fprintf(stderr, "inval r%u @%llx by store @%llx\n", E.Reg,
              (unsigned long long)E.Addr, (unsigned long long)Addr);
    if (E.Addr != Addr)
      ++Stats.FalseInvalidations;
  }
}

bool Alat::check(unsigned Reg, uint64_t Addr, bool Clear) {
  if (Faults.enabled()) {
    faultSpuriousInvalidate();
    if (faultForcesMiss()) {
      if (Entry *E = findEntry(Reg)) {
        E->Valid = false;
        noteDropped();
        ++Stats.Faults.ForcedMisses;
      }
    }
  }
  Entry *E = findEntry(Reg);
  if (!E || E->Addr != Addr) {
    ++Stats.CheckMisses;
    if (Trace && TraceBudget-- > 0)
      fprintf(stderr, "miss r%u @%llx (%s)\n", Reg,
              (unsigned long long)Addr, E ? "addr-mismatch" : "no-entry");
    return false;
  }
  ++Stats.CheckHits;
  if (Clear) {
    E->Valid = false;
    noteDropped();
  }
  return true;
}

bool Alat::checkRegister(unsigned Reg) {
  if (Faults.enabled()) {
    faultSpuriousInvalidate();
    if (faultForcesMiss()) {
      if (Entry *E = findEntry(Reg)) {
        E->Valid = false;
        noteDropped();
        ++Stats.Faults.ForcedMisses;
      }
    }
  }
  return findEntry(Reg) != nullptr;
}

void Alat::invalidateRegister(unsigned Reg) {
  if (Entry *E = findEntry(Reg)) {
    E->Valid = false;
    noteDropped();
  }
}

void Alat::invalidateAll() {
  for (Entry &E : Table)
    E.Valid = false;
  NumValid = 0;
  TagBloom = 0;
}

unsigned Alat::numValidEntries() const { return NumValid; }
