//===- FpWorkloads.cpp - Floating-point SPEC-like workloads -------------------===//
//
// The floating-point three: ammp, art, equake. Their defining property in
// the paper's evaluation is that eliminated loads are *floating point*
// loads, which cost 9 cycles (L2) instead of 2 (L1) on Itanium — so the
// same number of removed loads buys far more cycles (§4).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/LoopHelper.h"

using namespace srp;
using namespace srp::ir;
using namespace srp::core;
using namespace srp::workloads;

namespace {

void emitFpChecksum(IRBuilder &B, Symbol *Acc) {
  unsigned T = B.emitLoad(directRef(Acc));
  unsigned TI = B.emitAssign(Opcode::FpToInt, Operand::temp(T));
  B.emitPrint(Operand::temp(TI));
  B.setRet(Operand::temp(TI));
}

void seedPointer(IRBuilder &B, Symbol *P, Symbol *Real, Symbol *Decoy,
                 Symbol *AlwaysZero) {
  BasicBlock *DecoyBB = B.createBlock(P->Name + ".decoy");
  BasicBlock *Join = B.createBlock(P->Name + ".seeded");
  unsigned TZ = B.emitLoad(directRef(AlwaysZero));
  B.setCondBr(Operand::temp(TZ), DecoyBB, Join);
  B.setBlock(DecoyBB);
  unsigned TD = B.emitAddrOf(Decoy);
  B.emitStore(directRef(P), Operand::temp(TD));
  B.setBr(Join);
  B.setBlock(Join);
  unsigned TR = B.emitAddrOf(Real);
  B.emitStore(directRef(P), Operand::temp(TR));
}

void fpAccumulate(IRBuilder &B, Symbol *Acc, unsigned FloatTemp) {
  unsigned TAcc = B.emitLoad(directRef(Acc));
  unsigned TSum = B.emitAssign(Opcode::FAdd, Operand::temp(TAcc),
                               Operand::temp(FloatTemp));
  B.emitStore(directRef(Acc), Operand::temp(TSum));
}

//===----------------------------------------------------------------------===//
// ammp — molecular dynamics flavour: per-atom force accumulation where
// the mass parameter is read through a pointer on every interaction and
// forces are scattered through an ambiguous pointer. Indirect FP loads
// dominate the reduction.
//===----------------------------------------------------------------------===//

void buildAmmp(Module &M, uint64_t Scale) {
  const int64_t Pairs = static_cast<int64_t>(1500 * Scale);
  Symbol *Pos = M.createGlobal("pos", TypeKind::Float, 64);
  Symbol *Mass = M.createGlobal("mass", TypeKind::Float);
  Symbol *ForceSlot = M.createGlobal("force_slot", TypeKind::Float, 2);
  Symbol *MassPtr = M.createGlobal("mass_ptr", TypeKind::Int);
  Symbol *ForcePtr = M.createGlobal("force_ptr", TypeKind::Int);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *J = M.createGlobal("j", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Float);

  IRBuilder B(M);
  B.startFunction("main");
  LoopCtx Fill = beginLoop(B, J, Operand::constInt(64));
  {
    unsigned TF = B.emitAssign(Opcode::IntToFp,
                               Operand::temp(Fill.IdxTemp));
    unsigned TV = B.emitAssign(Opcode::FMul, Operand::temp(TF),
                               Operand::constFloat(0.125));
    B.emitStore(arrayRef(Pos, Operand::temp(Fill.IdxTemp)),
                Operand::temp(TV));
  }
  endLoop(B, Fill);
  B.emitStore(directRef(Mass), Operand::constFloat(1.5));
  // mass_ptr statically may point at force_slot (then *force_ptr stores
  // would kill it); dynamically it always points at mass.
  seedPointer(B, MassPtr, Mass, ForceSlot, Zero);
  seedPointer(B, ForcePtr, ForceSlot, Mass, Zero);

  LoopCtx L = beginLoop(B, I, Operand::constInt(Pairs));
  {
    unsigned TI = L.IdxTemp;
    // m = *mass_ptr  (promotable indirect FP load)
    unsigned TM = B.emitLoad(indirectRef(MassPtr, TypeKind::Float));
    unsigned TIdx = B.emitAssign(Opcode::And, Operand::temp(TI),
                                 Operand::constInt(63));
    unsigned TP = B.emitLoad(arrayRef(Pos, Operand::temp(TIdx)));
    unsigned TF = B.emitAssign(Opcode::FMul, Operand::temp(TM),
                               Operand::temp(TP));
    // Scatter both force components through the ambiguous pointer.
    B.emitStore(indirectRef(ForcePtr, TypeKind::Float),
                Operand::temp(TF));
    B.emitStore(indirectRef(ForcePtr, TypeKind::Float, 8),
                Operand::temp(TP));
    // m2 = *mass_ptr  (speculative reuse) — 9-cycle load saved.
    unsigned TM2 = B.emitLoad(indirectRef(MassPtr, TypeKind::Float));
    unsigned TF2 = B.emitAssign(Opcode::FMul, Operand::temp(TM2),
                                Operand::temp(TP));
    fpAccumulate(B, Acc, TF2);
  }
  endLoop(B, L);
  emitFpChecksum(B, Acc);
}

//===----------------------------------------------------------------------===//
// art — neural-net flavour: the scaling weight scalar is re-read around
// per-neuron bias updates through an ambiguous pointer. A mix of direct
// FP array loads and the promotable scalar.
//===----------------------------------------------------------------------===//

void buildArt(Module &M, uint64_t Scale) {
  const int64_t Steps = static_cast<int64_t>(1800 * Scale);
  Symbol *W = M.createGlobal("weights", TypeKind::Float, 32);
  Symbol *Gain = M.createGlobal("gain", TypeKind::Float);
  Symbol *Bias = M.createGlobal("bias", TypeKind::Float, 2);
  Symbol *BiasPtr = M.createGlobal("bias_ptr", TypeKind::Int);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *J = M.createGlobal("j", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Float);

  IRBuilder B(M);
  B.startFunction("main");
  LoopCtx Fill = beginLoop(B, J, Operand::constInt(32));
  {
    unsigned TF = B.emitAssign(Opcode::IntToFp,
                               Operand::temp(Fill.IdxTemp));
    B.emitStore(arrayRef(W, Operand::temp(Fill.IdxTemp)),
                Operand::temp(TF));
  }
  endLoop(B, Fill);
  B.emitStore(directRef(Gain), Operand::constFloat(0.75));
  seedPointer(B, BiasPtr, Bias, Gain, Zero);

  LoopCtx L = beginLoop(B, I, Operand::constInt(Steps));
  {
    unsigned TI = L.IdxTemp;
    unsigned TG = B.emitLoad(directRef(Gain)); // promotable FP scalar
    unsigned TIdx = B.emitAssign(Opcode::And, Operand::temp(TI),
                                 Operand::constInt(31));
    unsigned TW = B.emitLoad(arrayRef(W, Operand::temp(TIdx)));
    unsigned TAct = B.emitAssign(Opcode::FMul, Operand::temp(TG),
                                 Operand::temp(TW));
    // Bias and momentum updates through the ambiguous pointer.
    B.emitStore(indirectRef(BiasPtr, TypeKind::Float),
                Operand::temp(TAct));
    B.emitStore(indirectRef(BiasPtr, TypeKind::Float, 8),
                Operand::temp(TW));
    unsigned TG2 = B.emitLoad(directRef(Gain)); // speculative reuse
    unsigned TOut = B.emitAssign(Opcode::FMul, Operand::temp(TG2),
                                 Operand::temp(TAct));
    fpAccumulate(B, Acc, TOut);
  }
  endLoop(B, L);
  emitFpChecksum(B, Acc);
}

//===----------------------------------------------------------------------===//
// equake — sparse matvec flavour: K[col[j]] style gathers with a damping
// scalar re-read around result scatters through an ambiguous pointer.
//===----------------------------------------------------------------------===//

void buildEquake(Module &M, uint64_t Scale) {
  const int64_t Rows = static_cast<int64_t>(1200 * Scale);
  Symbol *K = M.createGlobal("stiffness", TypeKind::Float, 64);
  Symbol *Col = M.createGlobal("col", TypeKind::Int, 64);
  Symbol *Damp = M.createGlobal("damp", TypeKind::Float);
  Symbol *OutSlot = M.createGlobal("out_slot", TypeKind::Float, 2);
  Symbol *OutPtr = M.createGlobal("out_ptr", TypeKind::Int);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *J = M.createGlobal("j", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Float);

  IRBuilder B(M);
  B.startFunction("main");
  LoopCtx Fill = beginLoop(B, J, Operand::constInt(64));
  {
    unsigned TF = B.emitAssign(Opcode::IntToFp,
                               Operand::temp(Fill.IdxTemp));
    unsigned TV = B.emitAssign(Opcode::FAdd, Operand::temp(TF),
                               Operand::constFloat(0.5));
    B.emitStore(arrayRef(K, Operand::temp(Fill.IdxTemp)),
                Operand::temp(TV));
    unsigned TC = B.emitAssign(Opcode::Mul, Operand::temp(Fill.IdxTemp),
                               Operand::constInt(13));
    unsigned TCm = B.emitAssign(Opcode::And, Operand::temp(TC),
                                Operand::constInt(63));
    B.emitStore(arrayRef(Col, Operand::temp(Fill.IdxTemp)),
                Operand::temp(TCm));
  }
  endLoop(B, Fill);
  B.emitStore(directRef(Damp), Operand::constFloat(0.98));
  seedPointer(B, OutPtr, OutSlot, Damp, Zero);

  LoopCtx L = beginLoop(B, I, Operand::constInt(Rows));
  {
    unsigned TI = L.IdxTemp;
    unsigned TD = B.emitLoad(directRef(Damp)); // promotable FP scalar
    unsigned TIdx = B.emitAssign(Opcode::And, Operand::temp(TI),
                                 Operand::constInt(63));
    unsigned TCol = B.emitLoad(arrayRef(Col, Operand::temp(TIdx)));
    unsigned TK = B.emitLoad(arrayRef(K, Operand::temp(TCol)));
    unsigned TV = B.emitAssign(Opcode::FMul, Operand::temp(TD),
                               Operand::temp(TK));
    B.emitStore(indirectRef(OutPtr, TypeKind::Float), Operand::temp(TV));
    B.emitStore(indirectRef(OutPtr, TypeKind::Float, 8),
                Operand::temp(TK));
    unsigned TD2 = B.emitLoad(directRef(Damp)); // speculative reuse
    unsigned TV2 = B.emitAssign(Opcode::FMul, Operand::temp(TD2),
                                Operand::temp(TK));
    fpAccumulate(B, Acc, TV2);
  }
  endLoop(B, L);
  emitFpChecksum(B, Acc);
}

Workload makeFpWorkload(const char *Name,
                        void (*Build)(Module &, uint64_t)) {
  Workload W;
  W.Name = Name;
  W.Build = Build;
  W.FloatingPoint = true;
  W.TrainScale = 1;
  W.RefScale = 4;
  return W;
}

} // namespace

core::Workload srp::workloads::ammpWorkload() {
  return makeFpWorkload("ammp", buildAmmp);
}
core::Workload srp::workloads::artWorkload() {
  return makeFpWorkload("art", buildArt);
}
core::Workload srp::workloads::equakeWorkload() {
  return makeFpWorkload("equake", buildEquake);
}

std::vector<core::Workload> srp::workloads::standardWorkloads() {
  return {ammpWorkload(),   artWorkload(),    equakeWorkload(),
          bzip2Workload(),  gzipWorkload(),   mcfWorkload(),
          parserWorkload(), twolfWorkload(),  vortexWorkload(),
          vprWorkload()};
}
