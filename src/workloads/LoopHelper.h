//===- LoopHelper.h - Counted-loop construction helper ----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny structured-loop helper for the workload builders. Loop counters
/// live in memory symbols (the IR keeps temps single-assignment), so each
/// loop needs a header that reloads the counter; this wraps that pattern.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_WORKLOADS_LOOPHELPER_H
#define SRP_WORKLOADS_LOOPHELPER_H

#include "ir/IRBuilder.h"

namespace srp::workloads {

/// An open counted loop; the builder is positioned inside the body after
/// beginLoop and after the loop exit after endLoop.
struct LoopCtx {
  ir::BasicBlock *Hdr = nullptr;
  ir::BasicBlock *Body = nullptr;
  ir::BasicBlock *Exit = nullptr;
  ir::Symbol *IVar = nullptr;
  unsigned IdxTemp = ir::NoTemp; ///< The counter's value in the body.
};

/// Emits `for (IVar = Init; IVar < Bound; IVar += Step)` up to the body.
inline LoopCtx beginLoop(ir::IRBuilder &B, ir::Symbol *IVar,
                         ir::Operand Bound, int64_t Init = 0) {
  using namespace ir;
  LoopCtx L;
  L.IVar = IVar;
  L.Hdr = B.createBlock(IVar->Name + ".hdr");
  L.Body = B.createBlock(IVar->Name + ".body");
  L.Exit = B.createBlock(IVar->Name + ".exit");
  B.emitStore(directRef(IVar), Operand::constInt(Init));
  B.setBr(L.Hdr);
  B.setBlock(L.Hdr);
  unsigned TI = B.emitLoad(directRef(IVar));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI), Bound);
  B.setCondBr(Operand::temp(TC), L.Body, L.Exit);
  B.setBlock(L.Body);
  L.IdxTemp = B.emitLoad(directRef(IVar));
  return L;
}

/// Closes the loop (increments the counter, branches back) and positions
/// the builder at the exit block.
inline void endLoop(ir::IRBuilder &B, const LoopCtx &L, int64_t Step = 1) {
  using namespace ir;
  unsigned TI = B.emitLoad(directRef(L.IVar));
  unsigned TN = B.emitAssign(Opcode::Add, Operand::temp(TI),
                             Operand::constInt(Step));
  B.emitStore(directRef(L.IVar), Operand::temp(TN));
  B.setBr(L.Hdr);
  B.setBlock(L.Exit);
}

} // namespace srp::workloads

#endif // SRP_WORKLOADS_LOOPHELPER_H
