//===- IntWorkloads.cpp - Integer SPEC-like workloads -------------------------===//
//
// The integer seven: bzip2, gzip, mcf, parser, twolf, vortex, vpr. Each
// builder follows the recipe the paper's benchmarks exhibit:
//
//  * a pointer is seeded with several possible targets (so Steensgaard
//    must merge them and promotion is blocked without speculation), but
//    holds one stable target in the hot phase;
//  * a hot loop repeatedly reads a promotable location across a store
//    the compiler cannot disambiguate;
//  * a small fraction of iterations really collide in some workloads
//    (gzip most prominently), exercising check failures;
//  * a checksum is printed so every configuration is differentially
//    comparable.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/LoopHelper.h"

using namespace srp;
using namespace srp::ir;
using namespace srp::core;
using namespace srp::workloads;

namespace {

/// Shared tail: print the checksum stored in \p Acc.
void emitChecksum(IRBuilder &B, Symbol *Acc) {
  unsigned T = B.emitLoad(directRef(Acc));
  B.emitPrint(Operand::temp(T));
  B.setRet(Operand::temp(T));
}

/// Seeds pointer \p P with &Decoy on a statically-possible path and &Real
/// everywhere that actually executes. The decoy assignment sits behind a
/// branch on \p AlwaysZero, which the compiler cannot fold (it is a
/// memory load) but which never executes.
void seedPointer(IRBuilder &B, Symbol *P, Symbol *Real, Symbol *Decoy,
                 Symbol *AlwaysZero) {
  BasicBlock *DecoyBB = B.createBlock(P->Name + ".decoy");
  BasicBlock *Join = B.createBlock(P->Name + ".seeded");
  unsigned TZ = B.emitLoad(directRef(AlwaysZero));
  B.setCondBr(Operand::temp(TZ), DecoyBB, Join);
  B.setBlock(DecoyBB);
  unsigned TD = B.emitAddrOf(Decoy);
  B.emitStore(directRef(P), Operand::temp(TD));
  B.setBr(Join);
  B.setBlock(Join);
  unsigned TR = B.emitAddrOf(Real);
  B.emitStore(directRef(P), Operand::temp(TR));
}

/// acc += v, via the Acc global.
void accumulate(IRBuilder &B, Symbol *Acc, unsigned ValueTemp) {
  unsigned TAcc = B.emitLoad(directRef(Acc));
  unsigned TSum = B.emitAssign(Opcode::Add, Operand::temp(TAcc),
                               Operand::temp(ValueTemp));
  B.emitStore(directRef(Acc), Operand::temp(TSum));
}

//===----------------------------------------------------------------------===//
// gzip — window compression with hash chains. The hash head cell is read
// through a pointer around every position while chain updates go through
// a second pointer that really collides on every 20th position (~5% of
// the checks fail, Figure 10's gzip bar).
//===----------------------------------------------------------------------===//

void buildGzip(Module &M, uint64_t Scale) {
  const int64_t N = static_cast<int64_t>(2000 * Scale);
  Symbol *Window = M.createGlobal("window", TypeKind::Int, 256);
  Symbol *HashHead = M.createGlobal("hash_head", TypeKind::Int, 2);
  Symbol *ChainSlot = M.createGlobal("chain_slot", TypeKind::Int, 2);
  Symbol *HeadPtr = M.createGlobal("head_ptr", TypeKind::Int);
  Symbol *UpdPtr = M.createGlobal("upd_ptr", TypeKind::Int);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *J = M.createGlobal("j", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Int);

  IRBuilder B(M);
  B.startFunction("main");
  LoopCtx Fill = beginLoop(B, J, Operand::constInt(256));
  {
    unsigned TV = B.emitAssign(Opcode::Mul, Operand::temp(Fill.IdxTemp),
                               Operand::constInt(37));
    unsigned TM = B.emitAssign(Opcode::And, Operand::temp(TV),
                               Operand::constInt(255));
    B.emitStore(arrayRef(Window, Operand::temp(Fill.IdxTemp)),
                Operand::temp(TM));
  }
  endLoop(B, Fill);

  seedPointer(B, HeadPtr, HashHead, ChainSlot, Zero);
  seedPointer(B, UpdPtr, ChainSlot, HashHead, Zero);
  B.emitStore(directRef(HashHead), Operand::constInt(1));

  LoopCtx L = beginLoop(B, I, Operand::constInt(N));
  {
    unsigned TI = L.IdxTemp;
    // head = *head_ptr  (the promotable indirect load)
    unsigned THead = B.emitLoad(indirectRef(HeadPtr, TypeKind::Int));
    unsigned TIdx = B.emitAssign(Opcode::And, Operand::temp(TI),
                                 Operand::constInt(255));
    unsigned TWin = B.emitLoad(arrayRef(Window, Operand::temp(TIdx)));
    unsigned TMix = B.emitAssign(Opcode::Xor, Operand::temp(THead),
                                 Operand::temp(TWin));
    // Past the train horizon (positions >= 2500, so never during the
    // train run) every 20th position really targets the hash head — the
    // profile therefore speculates, and the ref run mis-speculates on
    // ~5% of its checks, Figure 10's gzip bar.
    BasicBlock *Collide = B.createBlock("collide");
    BasicBlock *NoCollide = B.createBlock("nocollide");
    BasicBlock *AfterSel = B.createBlock("aftersel");
    unsigned TRem = B.emitAssign(Opcode::Rem, Operand::temp(TI),
                                 Operand::constInt(20));
    unsigned TEq = B.emitAssign(Opcode::CmpEq, Operand::temp(TRem),
                                 Operand::constInt(19));
    unsigned TLate = B.emitAssign(Opcode::CmpLe, Operand::constInt(2500),
                                  Operand::temp(TI));
    unsigned TCol = B.emitAssign(Opcode::And, Operand::temp(TEq),
                                 Operand::temp(TLate));
    B.setCondBr(Operand::temp(TCol), Collide, NoCollide);
    B.setBlock(Collide);
    unsigned TH = B.emitAddrOf(HashHead);
    B.emitStore(directRef(UpdPtr), Operand::temp(TH));
    B.setBr(AfterSel);
    B.setBlock(NoCollide);
    unsigned TC2 = B.emitAddrOf(ChainSlot);
    B.emitStore(directRef(UpdPtr), Operand::temp(TC2));
    B.setBr(AfterSel);
    B.setBlock(AfterSel);
    // Two chain updates through the ambiguous pointer: one compare+move
    // pair per store makes the software baseline decline this chain, but
    // the ALAT still answers both with free checks.
    B.emitStore(indirectRef(UpdPtr, TypeKind::Int), Operand::temp(TMix));
    B.emitStore(indirectRef(UpdPtr, TypeKind::Int, 8),
                Operand::temp(TIdx));
    // head2 = *head_ptr  (speculative reuse across both stores)
    unsigned THead2 = B.emitLoad(indirectRef(HeadPtr, TypeKind::Int));
    accumulate(B, Acc, THead2);
  }
  endLoop(B, L);
  emitChecksum(B, Acc);
}

//===----------------------------------------------------------------------===//
// mcf — network-simplex flavour: a ring of heap arc nodes is walked while
// node costs are updated through an ambiguous pointer that never actually
// hits the walk pointer's cell. Indirect loads dominate.
//===----------------------------------------------------------------------===//

void buildMcf(Module &M, uint64_t Scale) {
  const int64_t Nodes = 64;
  const int64_t Steps = static_cast<int64_t>(3000 * Scale);
  Symbol *Head = M.createGlobal("head", TypeKind::Int);
  Symbol *Cur = M.createGlobal("cur", TypeKind::Int);
  Symbol *CostPtr = M.createGlobal("cost_ptr", TypeKind::Int);
  Symbol *Pot = M.createGlobal("potential", TypeKind::Int);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *K = M.createGlobal("k", TypeKind::Int);
  Symbol *Prev = M.createGlobal("prev", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Int);

  IRBuilder B(M);
  B.startFunction("main");
  // Build a ring of nodes {cost, next}.
  B.emitStore(directRef(Prev), Operand::constInt(0));
  LoopCtx BuildL = beginLoop(B, K, Operand::constInt(Nodes));
  {
    unsigned TNode = B.emitAlloc(Operand::constInt(2), "mcf_node");
    unsigned TCost = B.emitAssign(Opcode::Mul, Operand::temp(BuildL.IdxTemp),
                                  Operand::constInt(7));
    B.emitStore(directRef(Cur), Operand::temp(TNode));
    B.emitStore(indirectRef(Cur, TypeKind::Int, 0), Operand::temp(TCost));
    unsigned TPrev = B.emitLoad(directRef(Prev));
    B.emitStore(indirectRef(Cur, TypeKind::Int, 8), Operand::temp(TPrev));
    B.emitStore(directRef(Prev), Operand::temp(TNode));
    B.emitStore(directRef(Head), Operand::temp(TNode));
  }
  endLoop(B, BuildL);

  // The ambiguous cost pointer: statically it may point into the node
  // ring (the decoy branch stores the head node's address), dynamically
  // it always points at the potential scalar — so stores through it get
  // speculative χs on the node fields the walk reads.
  {
    BasicBlock *DecoyBB = B.createBlock("cost_ptr.decoy");
    BasicBlock *Join = B.createBlock("cost_ptr.seeded");
    unsigned TZ = B.emitLoad(directRef(Zero));
    B.setCondBr(Operand::temp(TZ), DecoyBB, Join);
    B.setBlock(DecoyBB);
    unsigned THd = B.emitLoad(directRef(Head));
    B.emitStore(directRef(CostPtr), Operand::temp(THd));
    B.setBr(Join);
    B.setBlock(Join);
    unsigned TPot = B.emitAddrOf(Pot);
    B.emitStore(directRef(CostPtr), Operand::temp(TPot));
  }

  unsigned THead0 = B.emitLoad(directRef(Head));
  B.emitStore(directRef(Cur), Operand::temp(THead0));
  LoopCtx L = beginLoop(B, I, Operand::constInt(Steps));
  {
    // cost = cur->cost; next = cur->next (indirect loads, promotable
    // against *cost_ptr stores)
    unsigned TCost = B.emitLoad(indirectRef(Cur, TypeKind::Int, 0));
    B.emitStore(indirectRef(CostPtr, TypeKind::Int),
                Operand::temp(TCost));
    unsigned TDelta = B.emitAssign(Opcode::Add, Operand::temp(TCost),
                                   Operand::constInt(1));
    B.emitStore(indirectRef(CostPtr, TypeKind::Int),
                Operand::temp(TDelta));
    unsigned TCost2 = B.emitLoad(indirectRef(Cur, TypeKind::Int, 0));
    accumulate(B, Acc, TCost2);
    unsigned TNext = B.emitLoad(indirectRef(Cur, TypeKind::Int, 8));
    BasicBlock *Wrap = B.createBlock("wrap");
    BasicBlock *Cont = B.createBlock("cont");
    unsigned TNz = B.emitAssign(Opcode::CmpNe, Operand::temp(TNext),
                                Operand::constInt(0));
    B.setCondBr(Operand::temp(TNz), Cont, Wrap);
    B.setBlock(Wrap);
    unsigned THead = B.emitLoad(directRef(Head));
    B.emitStore(directRef(Cur), Operand::temp(THead));
    B.setBr(L.Hdr); // jumps to the increment-free header: see below
    B.setBlock(Cont);
    B.emitStore(directRef(Cur), Operand::temp(TNext));
  }
  // NOTE: the Wrap path skips the counter increment on purpose (wrap
  // steps are free); the loop still terminates because wraps happen at
  // most once per Nodes steps.
  endLoop(B, L);
  emitChecksum(B, Acc);
}

//===----------------------------------------------------------------------===//
// parser — dictionary lookups: linked lists per bucket; the dictionary
// root pointer is re-read around node insertions. Indirect dominated.
//===----------------------------------------------------------------------===//

void buildParser(Module &M, uint64_t Scale) {
  const int64_t Words = static_cast<int64_t>(1500 * Scale);
  Symbol *DictRoot = M.createGlobal("dict_root", TypeKind::Int);
  Symbol *RootPtr = M.createGlobal("root_ptr", TypeKind::Int);
  Symbol *FreeList = M.createGlobal("free_list", TypeKind::Int);
  Symbol *TouchPtr = M.createGlobal("touch_ptr", TypeKind::Int);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *Cur = M.createGlobal("cur", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Int);

  IRBuilder B(M);
  B.startFunction("main");
  seedPointer(B, RootPtr, DictRoot, FreeList, Zero);
  seedPointer(B, TouchPtr, FreeList, DictRoot, Zero);
  // Root node.
  unsigned TRoot = B.emitAlloc(Operand::constInt(2), "dict_node");
  B.emitStore(directRef(DictRoot), Operand::temp(TRoot));
  B.emitStore(directRef(Cur), Operand::temp(TRoot));
  B.emitStore(indirectRef(Cur, TypeKind::Int, 0), Operand::constInt(17));

  LoopCtx L = beginLoop(B, I, Operand::constInt(Words));
  {
    unsigned TI = L.IdxTemp;
    // root = *root_ptr (promotable); walk one step through the list.
    unsigned TR = B.emitLoad(indirectRef(RootPtr, TypeKind::Int));
    B.emitStore(directRef(Cur), Operand::temp(TR));
    unsigned TVal = B.emitLoad(indirectRef(Cur, TypeKind::Int, 0));
    // Insert a node every 8th word (writes through cur, which may alias
    // *root_ptr as far as the compiler knows).
    BasicBlock *Insert = B.createBlock("insert");
    BasicBlock *Skip = B.createBlock("skip");
    unsigned TRem = B.emitAssign(Opcode::And, Operand::temp(TI),
                                 Operand::constInt(7));
    unsigned TDo = B.emitAssign(Opcode::CmpEq, Operand::temp(TRem),
                                Operand::constInt(0));
    B.setCondBr(Operand::temp(TDo), Insert, Skip);
    B.setBlock(Insert);
    unsigned TNode = B.emitAlloc(Operand::constInt(2), "word_node");
    // Two bookkeeping stores through the ambiguous touch pointer: the
    // compiler cannot rule out hits on the dict root cell.
    B.emitStore(indirectRef(TouchPtr, TypeKind::Int),
                Operand::temp(TNode));
    unsigned TMix = B.emitAssign(Opcode::Add, Operand::temp(TVal),
                                 Operand::temp(TI));
    B.emitStore(indirectRef(TouchPtr, TypeKind::Int),
                Operand::temp(TMix));
    B.emitStore(indirectRef(Cur, TypeKind::Int, 0), Operand::temp(TMix));
    B.setBr(Skip);
    B.setBlock(Skip);
    // root2 = *root_ptr (speculative reuse across the node store).
    unsigned TR2 = B.emitLoad(indirectRef(RootPtr, TypeKind::Int));
    B.emitStore(directRef(Cur), Operand::temp(TR2));
    unsigned TVal2 = B.emitLoad(indirectRef(Cur, TypeKind::Int, 0));
    accumulate(B, Acc, TVal2);
  }
  endLoop(B, L);
  emitChecksum(B, Acc);
}

//===----------------------------------------------------------------------===//
// bzip2 — block sorting flavour: bucket counting over a block with a
// work pointer that the compiler must assume can alias the bucket base
// scalar. Direct references dominate.
//===----------------------------------------------------------------------===//

void buildBzip2(Module &M, uint64_t Scale) {
  const int64_t N = static_cast<int64_t>(2500 * Scale);
  Symbol *Block = M.createGlobal("block", TypeKind::Int, 512);
  Symbol *Buckets = M.createGlobal("buckets", TypeKind::Int, 16);
  Symbol *Limit = M.createGlobal("limit", TypeKind::Int);
  Symbol *WorkPtr = M.createGlobal("work_ptr", TypeKind::Int);
  Symbol *Spare = M.createGlobal("spare", TypeKind::Int, 2);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *J = M.createGlobal("j", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Int);

  IRBuilder B(M);
  B.startFunction("main");
  LoopCtx Fill = beginLoop(B, J, Operand::constInt(512));
  {
    unsigned TV = B.emitAssign(Opcode::Mul, Operand::temp(Fill.IdxTemp),
                               Operand::constInt(131));
    unsigned TM = B.emitAssign(Opcode::And, Operand::temp(TV),
                               Operand::constInt(511));
    B.emitStore(arrayRef(Block, Operand::temp(Fill.IdxTemp)),
                Operand::temp(TM));
  }
  endLoop(B, Fill);
  seedPointer(B, WorkPtr, Spare, Limit, Zero);
  B.emitStore(directRef(Limit), Operand::constInt(511));

  LoopCtx L = beginLoop(B, I, Operand::constInt(N));
  {
    unsigned TI = L.IdxTemp;
    // limit is re-read around the *work_ptr store: the promotable direct
    // scalar of this workload.
    unsigned TLim = B.emitLoad(directRef(Limit));
    unsigned TIdx = B.emitAssign(Opcode::And, Operand::temp(TI),
                                 Operand::temp(TLim));
    unsigned TV = B.emitLoad(arrayRef(Block, Operand::temp(TIdx)));
    B.emitStore(indirectRef(WorkPtr, TypeKind::Int), Operand::temp(TV));
    B.emitStore(indirectRef(WorkPtr, TypeKind::Int, 8),
                Operand::temp(TIdx));
    unsigned TLim2 = B.emitLoad(directRef(Limit));
    unsigned TB = B.emitAssign(Opcode::And, Operand::temp(TV),
                               Operand::constInt(15));
    unsigned TOld = B.emitLoad(arrayRef(Buckets, Operand::temp(TB)));
    unsigned TNew = B.emitAssign(Opcode::Add, Operand::temp(TOld),
                                 Operand::constInt(1));
    B.emitStore(arrayRef(Buckets, Operand::temp(TB)), Operand::temp(TNew));
    accumulate(B, Acc, TLim2);
  }
  endLoop(B, L);
  // Fold the buckets into the checksum.
  LoopCtx Fold = beginLoop(B, J, Operand::constInt(16));
  {
    unsigned TV = B.emitLoad(arrayRef(Buckets, Operand::temp(Fold.IdxTemp)));
    accumulate(B, Acc, TV);
  }
  endLoop(B, Fold);
  emitChecksum(B, Acc);
}

//===----------------------------------------------------------------------===//
// twolf — simulated annealing flavour: cell records on the heap; a
// repeatedly read best-cost cell versus swap updates through an
// ambiguous pointer; occasional genuine improvement writes (1/32).
//===----------------------------------------------------------------------===//

void buildTwolf(Module &M, uint64_t Scale) {
  const int64_t Moves = static_cast<int64_t>(2200 * Scale);
  // Annealing costs are floating point, which also makes the forwarding
  // against the occasional accept-path store clearly profitable (a saved
  // FP load is 9 cycles).
  Symbol *BestCost = M.createGlobal("best_cost", TypeKind::Float);
  Symbol *TrialCost = M.createGlobal("trial_cost", TypeKind::Float, 2);
  Symbol *BestPtr = M.createGlobal("best_ptr", TypeKind::Int);
  Symbol *TrialPtr = M.createGlobal("trial_ptr", TypeKind::Int);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Float);

  IRBuilder B(M);
  B.startFunction("main");
  seedPointer(B, BestPtr, BestCost, TrialCost, Zero);
  seedPointer(B, TrialPtr, TrialCost, BestCost, Zero);
  B.emitStore(directRef(BestCost), Operand::constFloat(1000000.0));

  LoopCtx L = beginLoop(B, I, Operand::constInt(Moves));
  {
    unsigned TI = L.IdxTemp;
    // best = *best_ptr (promotable FP load)
    unsigned TBest = B.emitLoad(indirectRef(BestPtr, TypeKind::Float));
    unsigned TTrial = B.emitAssign(Opcode::Mul, Operand::temp(TI),
                                   Operand::constInt(97));
    unsigned TTrialM = B.emitAssign(Opcode::And, Operand::temp(TTrial),
                                    Operand::constInt(1048575));
    unsigned TTrialF = B.emitAssign(Opcode::IntToFp,
                                    Operand::temp(TTrialM));
    // Two trial-state updates through the ambiguous pointer.
    B.emitStore(indirectRef(TrialPtr, TypeKind::Float),
                Operand::temp(TTrialF));
    B.emitStore(indirectRef(TrialPtr, TypeKind::Float, 8),
                Operand::temp(TBest));
    // best2 = *best_ptr  (reuse); accept better trials 1/32 of the time
    // via a direct store to best_cost (a real kill, forwarded by the
    // software check in both the baseline and the ALAT build).
    unsigned TBest2 = B.emitLoad(indirectRef(BestPtr, TypeKind::Float));
    BasicBlock *Accept = B.createBlock("accept");
    BasicBlock *Reject = B.createBlock("reject");
    unsigned TRem = B.emitAssign(Opcode::And, Operand::temp(TI),
                                 Operand::constInt(31));
    unsigned TLess = B.emitAssign(Opcode::FCmpLt, Operand::temp(TTrialF),
                                  Operand::temp(TBest2));
    unsigned TGate = B.emitAssign(Opcode::CmpEq, Operand::temp(TRem),
                                  Operand::constInt(0));
    unsigned TBoth = B.emitAssign(Opcode::And, Operand::temp(TLess),
                                  Operand::temp(TGate));
    B.setCondBr(Operand::temp(TBoth), Accept, Reject);
    B.setBlock(Accept);
    B.emitStore(directRef(BestCost), Operand::temp(TTrialF));
    B.setBr(Reject);
    B.setBlock(Reject);
    unsigned TBest3 = B.emitLoad(indirectRef(BestPtr, TypeKind::Float));
    unsigned TAcc = B.emitLoad(directRef(Acc));
    unsigned TSum = B.emitAssign(Opcode::FAdd, Operand::temp(TAcc),
                                 Operand::temp(TBest3));
    B.emitStore(directRef(Acc), Operand::temp(TSum));
  }
  endLoop(B, L);
  unsigned T = B.emitLoad(directRef(Acc));
  unsigned TI2 = B.emitAssign(Opcode::FpToInt, Operand::temp(T));
  B.emitPrint(Operand::temp(TI2));
  B.setRet(Operand::temp(TI2));
}

//===----------------------------------------------------------------------===//
// vortex — object database flavour: fixed-layout records on the heap,
// field reads through record pointers, and a transaction helper call in
// the cold path (calls are promotion barriers, so the hot path must
// carry the speculation).
//===----------------------------------------------------------------------===//

void buildVortex(Module &M, uint64_t Scale) {
  const int64_t Txns = static_cast<int64_t>(1800 * Scale);
  Symbol *DbSize = M.createGlobal("db_size", TypeKind::Int);
  Symbol *RecPtr = M.createGlobal("rec_ptr", TypeKind::Int);
  Symbol *IdxPtr = M.createGlobal("idx_ptr", TypeKind::Int);
  Symbol *IdxCell = M.createGlobal("idx_cell", TypeKind::Int, 2);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Int);

  IRBuilder B(M);
  // Helper: commit(n) bumps db_size (clobbers globals at the call site).
  Function *Commit = B.startFunction("commit");
  Symbol *NArg = M.createLocal(Commit, "n", TypeKind::Int, 1,
                               /*IsFormal=*/true);
  {
    unsigned TN = B.emitLoad(directRef(NArg));
    unsigned TS = B.emitLoad(directRef(DbSize));
    unsigned TSum = B.emitAssign(Opcode::Add, Operand::temp(TS),
                                 Operand::temp(TN));
    B.emitStore(directRef(DbSize), Operand::temp(TSum));
    B.setRet();
  }

  B.startFunction("main");
  unsigned TRec = B.emitAlloc(Operand::constInt(4), "record");
  B.emitStore(directRef(RecPtr), Operand::temp(TRec));
  B.emitStore(indirectRef(RecPtr, TypeKind::Int, 0),
              Operand::constInt(11));
  B.emitStore(indirectRef(RecPtr, TypeKind::Int, 8),
              Operand::constInt(23));
  // The index pointer may statically point into the record (decoy), so
  // stores through it carry speculative χs on the record fields.
  {
    BasicBlock *DecoyBB = B.createBlock("idx_ptr.decoy");
    BasicBlock *Join = B.createBlock("idx_ptr.seeded");
    unsigned TZ = B.emitLoad(directRef(Zero));
    B.setCondBr(Operand::temp(TZ), DecoyBB, Join);
    B.setBlock(DecoyBB);
    B.emitStore(directRef(IdxPtr), Operand::temp(TRec));
    B.setBr(Join);
    B.setBlock(Join);
    unsigned TIC = B.emitAddrOf(IdxCell);
    B.emitStore(directRef(IdxPtr), Operand::temp(TIC));
  }

  LoopCtx L = beginLoop(B, I, Operand::constInt(Txns));
  {
    unsigned TI = L.IdxTemp;
    // f0 = rec->field0 (promotable across *idx_ptr stores)
    unsigned TF0 = B.emitLoad(indirectRef(RecPtr, TypeKind::Int, 0));
    B.emitStore(indirectRef(IdxPtr, TypeKind::Int), Operand::temp(TI));
    B.emitStore(indirectRef(IdxPtr, TypeKind::Int, 8),
                Operand::temp(TF0));
    unsigned TF0b = B.emitLoad(indirectRef(RecPtr, TypeKind::Int, 0));
    unsigned TF1 = B.emitLoad(indirectRef(RecPtr, TypeKind::Int, 8));
    unsigned TMix = B.emitAssign(Opcode::Add, Operand::temp(TF0b),
                                 Operand::temp(TF1));
    accumulate(B, Acc, TMix);
    (void)TF0;
    // Commit every 64th transaction (cold call; promotion barrier).
    BasicBlock *Cold = B.createBlock("cold");
    BasicBlock *Hot = B.createBlock("hot");
    unsigned TRem = B.emitAssign(Opcode::And, Operand::temp(TI),
                                 Operand::constInt(63));
    unsigned TDo = B.emitAssign(Opcode::CmpEq, Operand::temp(TRem),
                                Operand::constInt(0));
    B.setCondBr(Operand::temp(TDo), Cold, Hot);
    B.setBlock(Cold);
    B.emitCall(Commit, {Operand::constInt(1)});
    B.setBr(Hot);
    B.setBlock(Hot);
  }
  endLoop(B, L);
  unsigned TSize = B.emitLoad(directRef(DbSize));
  accumulate(B, Acc, TSize);
  emitChecksum(B, Acc);
}

//===----------------------------------------------------------------------===//
// vpr — placement flavour: a cost grid with bounding-box scans; the grid
// dimension scalar is re-read around net writes through an ambiguous
// pointer. Mostly direct loads.
//===----------------------------------------------------------------------===//

void buildVpr(Module &M, uint64_t Scale) {
  const int64_t Nets = static_cast<int64_t>(2000 * Scale);
  Symbol *Grid = M.createGlobal("grid", TypeKind::Int, 128);
  Symbol *Dim = M.createGlobal("dim", TypeKind::Int);
  Symbol *NetPtr = M.createGlobal("net_ptr", TypeKind::Int);
  Symbol *NetCell = M.createGlobal("net_cell", TypeKind::Int, 2);
  Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Int);

  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(Dim), Operand::constInt(127));
  seedPointer(B, NetPtr, NetCell, Dim, Zero);

  LoopCtx L = beginLoop(B, I, Operand::constInt(Nets));
  {
    unsigned TI = L.IdxTemp;
    unsigned TDim = B.emitLoad(directRef(Dim)); // promotable
    unsigned TX = B.emitAssign(Opcode::And, Operand::temp(TI),
                               Operand::temp(TDim));
    unsigned TCell = B.emitLoad(arrayRef(Grid, Operand::temp(TX)));
    unsigned TNew = B.emitAssign(Opcode::Add, Operand::temp(TCell),
                                 Operand::constInt(1));
    B.emitStore(arrayRef(Grid, Operand::temp(TX)), Operand::temp(TNew));
    B.emitStore(indirectRef(NetPtr, TypeKind::Int), Operand::temp(TNew));
    B.emitStore(indirectRef(NetPtr, TypeKind::Int, 8),
                Operand::temp(TX));
    unsigned TDim2 = B.emitLoad(directRef(Dim)); // speculative reuse
    accumulate(B, Acc, TDim2);
  }
  endLoop(B, L);
  emitChecksum(B, Acc);
}

Workload makeWorkload(const char *Name,
                      void (*Build)(Module &, uint64_t), bool Fp,
                      uint64_t TrainScale = 1, uint64_t RefScale = 4) {
  Workload W;
  W.Name = Name;
  W.Build = Build;
  W.FloatingPoint = Fp;
  W.TrainScale = TrainScale;
  W.RefScale = RefScale;
  return W;
}

} // namespace

core::Workload srp::workloads::gzipWorkload() {
  return makeWorkload("gzip", buildGzip, false);
}
core::Workload srp::workloads::mcfWorkload() {
  return makeWorkload("mcf", buildMcf, false);
}
core::Workload srp::workloads::parserWorkload() {
  return makeWorkload("parser", buildParser, false);
}
core::Workload srp::workloads::bzip2Workload() {
  return makeWorkload("bzip2", buildBzip2, false);
}
core::Workload srp::workloads::twolfWorkload() {
  return makeWorkload("twolf", buildTwolf, false);
}
core::Workload srp::workloads::vortexWorkload() {
  return makeWorkload("vortex", buildVortex, false);
}
core::Workload srp::workloads::vprWorkload() {
  return makeWorkload("vpr", buildVpr, false);
}
