//===- Workloads.h - Synthetic SPEC CPU2000-like programs -------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ten synthetic pointer-intensive workloads standing in for the SPEC
/// CPU2000 benchmarks of the paper's evaluation (§4). What speculative
/// register promotion exploits is dynamic alias behaviour, so each
/// workload is engineered to exhibit its namesake's reported character:
///
///   ammp / art / equake — floating-point dominated (9-cycle FP loads);
///   ammp / gzip / mcf / parser — reductions dominated by indirect loads
///   (Figure 9); gzip — a small but visible mis-speculation ratio
///   (Figure 10, ~5%); the rest — integer codes with mostly-direct
///   promotable references.
///
/// Workload contract: Build(M, Scale) must produce the same code shape
/// for every scale (only data constants change); the pipeline remaps
/// train profiles onto the ref build by statement id.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_WORKLOADS_WORKLOADS_H
#define SRP_WORKLOADS_WORKLOADS_H

#include "core/Pipeline.h"

#include <vector>

namespace srp::workloads {

core::Workload ammpWorkload();   ///< FP molecular dynamics, indirect FP.
core::Workload artWorkload();    ///< FP neural net, array weights.
core::Workload equakeWorkload(); ///< FP sparse matvec, indexed indirection.
core::Workload bzip2Workload();  ///< Block sort, direct arrays.
core::Workload gzipWorkload();   ///< Compression, hash chains, ~5% misspec.
core::Workload mcfWorkload();    ///< Network simplex, pointer chasing.
core::Workload parserWorkload(); ///< Dictionary linked lists.
core::Workload twolfWorkload();  ///< Annealing over cell records.
core::Workload vortexWorkload(); ///< OO database records + helper calls.
core::Workload vprWorkload();    ///< Placement grid, direct accumulation.

/// All ten, in the order the paper's figures list them.
std::vector<core::Workload> standardWorkloads();

} // namespace srp::workloads

#endif // SRP_WORKLOADS_WORKLOADS_H
