//===- DiffOracle.h - Differential translation validation -------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle behind the fuzzer and the replay tests. One
/// oracle run takes a program (an IRBuilder callback or .sir text) and a
/// pipeline config, and checks the whole promotion story:
///
///  1. *Reference semantics*: interpret the unpromoted module, recording
///     output, exit value, final global memory, and every access.
///  2. *Promoted semantics*: run the module-mode pipeline (profile →
///     promote → verify → lower → allocate → simulate), then interpret
///     the promoted IR the same way. Output, exit value, and final
///     global state must all match the reference.
///  3. *Speculative non-interference* (the SNIP-style check): every load
///     executed under an advanced flag in the promoted run must land
///     inside an object the *unpromoted* run touched. Promotion may
///     reorder and re-execute loads, but it must not make the program
///     observe memory the original program never observed — a
///     speculative access outside every touched object is a wild read
///     introduced by the compiler.
///  4. *Recovery correctness under faults*: re-simulate the same binary
///     under each requested arch::FaultPlan (spurious ALAT
///     invalidations, capacity squeezes, forced check misses). Faults
///     only ever force the conservative direction — reload or recovery
///     — so a correct compiler/simulator pair must still produce the
///     reference output under every schedule.
///
/// Any disagreement is a finding; OracleReport says which check failed
/// and under which fault schedule.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_VALID_DIFFORACLE_H
#define SRP_VALID_DIFFORACLE_H

#include "arch/FaultPlan.h"
#include "core/Pipeline.h"

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace srp::ir {
class Module;
} // namespace srp::ir

namespace srp::valid {

/// Which of the oracle's checks failed.
enum class MismatchKind : uint8_t {
  None,               ///< Everything agreed.
  InvalidInput,       ///< Parse/verify failed before any run (not a
                      ///< promotion bug; srp-fuzz treats generator
                      ///< output that lands here as a finding).
  BaseRunFailed,      ///< The unpromoted interpretation trapped.
  PipelineError,      ///< Compile or reference simulation failed.
  PromotedRunFailed,  ///< The promoted interpretation trapped.
  OutputDiverged,     ///< Printed output differs (interpreter level).
  ExitDiverged,       ///< main's return value differs.
  FinalStateDiverged, ///< Final global memory differs.
  SpecLeak,           ///< Speculative load outside base-touched objects.
  SecretLeak,         ///< Same, but the observed object is `secret`: the
                      ///< promotion let speculation read confidential
                      ///< storage the program never touches.
  TaintDisagree,      ///< Static taint analysis passed the promoted IR
                      ///< but the dynamic shadow run observed a
                      ///< speculative secret leak — an analysis
                      ///< soundness bug, the cross-check's reason to
                      ///< exist.
  SimDiverged,        ///< Simulated run disagrees (possibly under faults).
};

const char *mismatchKindName(MismatchKind K);

/// What to run and what to mutate. Config.SpecVerify should be Fatal for
/// fuzzing so static-discipline violations surface as PipelineError.
struct OracleOptions {
  core::PipelineConfig Config;
  /// Fault schedules to re-simulate the compiled binary under (disabled
  /// plans are skipped).
  std::vector<arch::FaultPlan> FaultPlans;
  /// Test hook, run on the *promoted* module before the interpreter-level
  /// checks (the negative tests use it to sabotage promotion and assert
  /// the oracle notices). Returns an error string, empty on success.
  std::function<std::string(ir::Module &)> Transform;
};

/// Outcome of one oracle run.
struct OracleReport {
  bool Ok = false;
  MismatchKind Kind = MismatchKind::None;
  std::string Detail;       ///< Human diagnostic for the failed check.
  std::string FaultContext; ///< FaultPlan::describe() when a fault run
                            ///< failed; empty otherwise.
  /// Evidence the run exercised speculation (tests assert on these).
  uint64_t SpeculativeAccesses = 0;
  unsigned FaultPlansRun = 0;
  /// Taint cross-check evidence, filled when the module declares secret
  /// symbols: findings of the static analysis::TaintFlow over the
  /// promoted IR, and leaks the dynamic shadow-taint run observed. Both
  /// nonzero (or both zero) is agreement; dynamic > 0 with static == 0
  /// is TaintDisagree.
  unsigned StaticTaintDiags = 0;
  unsigned DynamicTaintLeaks = 0;
  pre::PromotionStats Promotion;
  arch::AlatStats Alat; ///< From the no-fault simulation.
};

/// Builds a module (deterministically — the oracle materializes the
/// program twice and compares across the two copies).
using ModuleBuilder = std::function<void(ir::Module &)>;

/// Runs every check against the program \p Build constructs.
OracleReport runDiffOracle(const ModuleBuilder &Build,
                           const OracleOptions &Opts);

/// Same, for textual IR (.sir). Parse failures report InvalidInput with
/// the parser's "line N:" diagnostic.
OracleReport runDiffOracleOnText(std::string_view Text,
                                 const OracleOptions &Opts);

} // namespace srp::valid

#endif // SRP_VALID_DIFFORACLE_H
