//===- DiffOracle.cpp - Differential translation validation ------------------===//

#include "valid/DiffOracle.h"

#include "analysis/TaintFlow.h"
#include "core/Pass.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "support/StringUtils.h"

#include <unordered_set>

using namespace srp;
using namespace srp::valid;

const char *srp::valid::mismatchKindName(MismatchKind K) {
  switch (K) {
  case MismatchKind::None:
    return "none";
  case MismatchKind::InvalidInput:
    return "invalid-input";
  case MismatchKind::BaseRunFailed:
    return "base-run-failed";
  case MismatchKind::PipelineError:
    return "pipeline-error";
  case MismatchKind::PromotedRunFailed:
    return "promoted-run-failed";
  case MismatchKind::OutputDiverged:
    return "output-diverged";
  case MismatchKind::ExitDiverged:
    return "exit-diverged";
  case MismatchKind::FinalStateDiverged:
    return "final-state-diverged";
  case MismatchKind::SpecLeak:
    return "spec-leak";
  case MismatchKind::SecretLeak:
    return "secret-leak";
  case MismatchKind::TaintDisagree:
    return "taint-disagree";
  case MismatchKind::SimDiverged:
    return "sim-diverged";
  }
  return "unknown";
}

namespace {

/// Builder that can refuse (parse errors); wraps both public entries.
using FallibleBuilder = std::function<std::string(ir::Module &)>;

std::string materialize(const FallibleBuilder &Build, ir::Module &M) {
  std::string Err = Build(M);
  if (!Err.empty())
    return Err;
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  std::vector<std::string> Errors = ir::verifyModule(M);
  if (!Errors.empty())
    return "verifier: " + Errors[0];
  return "";
}

OracleReport fail(MismatchKind Kind, std::string Detail,
                  std::string FaultContext = "") {
  OracleReport R;
  R.Ok = false;
  R.Kind = Kind;
  R.Detail = std::move(Detail);
  R.FaultContext = std::move(FaultContext);
  return R;
}

/// First index where the two output vectors differ, formatted.
std::string describeOutputDiff(const std::vector<std::string> &Base,
                               const std::vector<std::string> &Got) {
  size_t N = std::min(Base.size(), Got.size());
  for (size_t I = 0; I < N; ++I)
    if (Base[I] != Got[I])
      return formatString("print #%zu: expected '%s', got '%s'", I,
                          Base[I].c_str(), Got[I].c_str());
  return formatString("print count: expected %zu lines, got %zu",
                      Base.size(), Got.size());
}

OracleReport runImpl(const FallibleBuilder &Build, const OracleOptions &Opts) {
  // 1. Reference semantics: the unpromoted interpretation.
  ir::Module Base;
  if (std::string Err = materialize(Build, Base); !Err.empty())
    return fail(MismatchKind::InvalidInput, Err);

  interp::MemTrace BaseTrace;
  interp::Interpreter BaseInterp(Base);
  BaseInterp.setMemTrace(&BaseTrace);
  interp::RunResult BaseRun = BaseInterp.run(Opts.Config.InterpFuel);
  if (!BaseRun.Ok)
    return fail(MismatchKind::BaseRunFailed, BaseRun.Error);

  std::unordered_set<unsigned> TouchedSymbols;
  for (const interp::MemTrace::Access &A : BaseTrace.Accesses)
    TouchedSymbols.insert(A.Symbol);

  // For a void main the simulator's exit value is whatever the return
  // register last held — only compare exit values when main returns one.
  const ir::Function *Main = Base.findFunction("main");
  const bool MainReturns = Main && Main->HasReturnValue;

  // 2. Compile a second materialization through the module-mode pipeline
  // (profile → promote → verify → lower → allocate → simulate). Faults
  // stay off here; the fault schedules re-simulate the same binary below.
  ir::Module Prom;
  if (std::string Err = materialize(Build, Prom); !Err.empty())
    return fail(MismatchKind::InvalidInput, "second build: " + Err);

  core::PipelineState S;
  S.External = &Prom;
  S.Config = Opts.Config;
  S.Config.Sim.Faults = arch::FaultPlan();
  core::PassManager PM;
  core::addStandardPasses(PM);
  if (!PM.run(S))
    return fail(MismatchKind::PipelineError, S.Result.Error);

  OracleReport R;
  R.Promotion = S.Result.Promotion;
  R.Alat = S.Result.Sim.Alat;

  if (S.Result.Output != BaseRun.Output)
    return fail(MismatchKind::SimDiverged,
                describeOutputDiff(BaseRun.Output, S.Result.Output));
  if (MainReturns && S.Result.Sim.ExitValue != BaseRun.ExitValue)
    return fail(MismatchKind::SimDiverged,
                formatString("exit value: expected %lld, got %lld",
                             static_cast<long long>(BaseRun.ExitValue),
                             static_cast<long long>(S.Result.Sim.ExitValue)));

  // 3. Interpreter-level checks on the promoted IR (the pipeline
  // transformed Prom in place). The Transform hook sabotages here.
  if (Opts.Transform) {
    std::string Err = Opts.Transform(Prom);
    if (!Err.empty())
      return fail(MismatchKind::InvalidInput, "transform: " + Err);
    for (unsigned I = 0; I < Prom.numFunctions(); ++I)
      Prom.function(I)->recomputeCFG();
    std::vector<std::string> Errors = ir::verifyModule(Prom);
    if (!Errors.empty())
      return fail(MismatchKind::InvalidInput,
                  "transform left invalid IR: " + Errors[0]);
  }

  bool HasSecrets = false;
  for (unsigned I = 0, E = Prom.numSymbols(); I != E; ++I)
    if (Prom.symbol(I)->Secret)
      HasSecrets = true;

  interp::MemTrace PromTrace;
  interp::TaintTrace PromTaint;
  interp::Interpreter PromInterp(Prom);
  PromInterp.setMemTrace(&PromTrace);
  if (HasSecrets)
    PromInterp.setTaintTrace(&PromTaint);
  interp::RunResult PromRun = PromInterp.run(Opts.Config.InterpFuel);
  if (!PromRun.Ok)
    return fail(MismatchKind::PromotedRunFailed, PromRun.Error);

  if (PromRun.Output != BaseRun.Output)
    return fail(MismatchKind::OutputDiverged,
                describeOutputDiff(BaseRun.Output, PromRun.Output));
  if (PromRun.ExitValue != BaseRun.ExitValue)
    return fail(MismatchKind::ExitDiverged,
                formatString("exit value: expected %lld, got %lld",
                             static_cast<long long>(BaseRun.ExitValue),
                             static_cast<long long>(PromRun.ExitValue)));
  if (PromTrace.FinalGlobals.size() != BaseTrace.FinalGlobals.size())
    return fail(MismatchKind::FinalStateDiverged,
                formatString("global cell count: expected %zu, got %zu",
                             BaseTrace.FinalGlobals.size(),
                             PromTrace.FinalGlobals.size()));
  for (size_t I = 0; I < BaseTrace.FinalGlobals.size(); ++I)
    if (PromTrace.FinalGlobals[I] != BaseTrace.FinalGlobals[I])
      return fail(
          MismatchKind::FinalStateDiverged,
          formatString("global cell %zu: expected 0x%llx, got 0x%llx", I,
                       static_cast<unsigned long long>(
                           BaseTrace.FinalGlobals[I]),
                       static_cast<unsigned long long>(
                           PromTrace.FinalGlobals[I])));

  // 4. Non-interference: speculative observations must stay inside
  // objects the unpromoted run touched. Symbol ids are comparable
  // because both modules are materialized by the same deterministic
  // builder (same creation order).
  for (const interp::MemTrace::Access &A : PromTrace.Accesses) {
    if (!A.Speculative)
      continue;
    ++R.SpeculativeAccesses;
    if (A.Symbol == interp::AliasProfile::UnknownTarget)
      return fail(MismatchKind::SpecLeak,
                  formatString("speculative load at 0x%llx lands outside "
                               "every object",
                               static_cast<unsigned long long>(A.Addr)));
    if (!TouchedSymbols.count(A.Symbol)) {
      // Secret-granular classification: observing confidential storage
      // the program never touches is the severe variant of the same
      // non-interference violation.
      bool IsSecret = A.Symbol < Prom.numSymbols() &&
                      Prom.symbol(A.Symbol)->Secret;
      return fail(IsSecret ? MismatchKind::SecretLeak
                           : MismatchKind::SpecLeak,
                  formatString("speculative load at 0x%llx observes %ssymbol "
                               "#%u, which the unpromoted run never touched",
                               static_cast<unsigned long long>(A.Addr),
                               IsSecret ? "secret " : "", A.Symbol));
    }
  }

  // 4b. Taint cross-check (secret-labeled modules only): the static
  // analysis::TaintFlow must over-approximate the dynamic shadow run.
  // A static PASS with a dynamic leak means the analysis missed a flow —
  // the disagreement the fuzzer hunts for.
  if (HasSecrets) {
    R.DynamicTaintLeaks = static_cast<unsigned>(PromTaint.Leaks.size());
    for (unsigned I = 0; I < Prom.numFunctions(); ++I)
      Prom.function(I)->recomputeCFG();
    analysis::TaintFlow TF(Prom);
    R.StaticTaintDiags = static_cast<unsigned>(TF.diags().size());
    if (TF.diags().empty() && !PromTaint.Leaks.empty()) {
      const interp::TaintTrace::Leak &L = PromTaint.Leaks.front();
      return fail(MismatchKind::TaintDisagree,
                  formatString("static taint analysis passed but the "
                               "dynamic run leaked a secret at a(n) %s "
                               "sink in %s (line %u, sites 0x%llx)",
                               interp::taintSinkName(L.S),
                               L.Function.c_str(), L.Line,
                               static_cast<unsigned long long>(L.SpecMask)));
    }
  }

  // 5. Fault schedules: same binary, adversarial ALAT. Faults only force
  // reloads/recoveries, so the functional result must not move.
  for (const arch::FaultPlan &Plan : Opts.FaultPlans) {
    if (!Plan.enabled() || !S.MM)
      continue;
    arch::SimConfig SimCfg = Opts.Config.Sim;
    SimCfg.Faults = Plan;
    arch::SimResult Faulted = arch::simulate(*S.MM, SimCfg);
    ++R.FaultPlansRun;
    if (!Faulted.Ok)
      return fail(MismatchKind::SimDiverged,
                  "simulation failed under faults: " + Faulted.Error,
                  Plan.describe());
    if (Faulted.Output != BaseRun.Output)
      return fail(MismatchKind::SimDiverged,
                  describeOutputDiff(BaseRun.Output, Faulted.Output),
                  Plan.describe());
    if (MainReturns && Faulted.ExitValue != BaseRun.ExitValue)
      return fail(MismatchKind::SimDiverged,
                  formatString("exit value under faults: expected %lld, "
                               "got %lld",
                               static_cast<long long>(BaseRun.ExitValue),
                               static_cast<long long>(Faulted.ExitValue)),
                  Plan.describe());
  }

  R.Ok = true;
  R.Kind = MismatchKind::None;
  return R;
}

} // namespace

OracleReport srp::valid::runDiffOracle(const ModuleBuilder &Build,
                                       const OracleOptions &Opts) {
  return runImpl(
      [&Build](ir::Module &M) {
        Build(M);
        return std::string();
      },
      Opts);
}

OracleReport srp::valid::runDiffOracleOnText(std::string_view Text,
                                             const OracleOptions &Opts) {
  return runImpl(
      [Text](ir::Module &M) {
        std::string Err;
        if (!ir::parseModule(Text, M, Err))
          return Err.empty() ? std::string("parse error") : Err;
        return std::string();
      },
      Opts);
}
