//===- OStream.cpp - Lightweight output stream ----------------------------===//

#include "support/OStream.h"

#include <cinttypes>
#include <cstring>

using namespace srp;

OStream::~OStream() = default;

OStream &OStream::operator<<(char C) {
  writeImpl(&C, 1);
  return *this;
}

OStream &OStream::operator<<(const char *Str) {
  writeImpl(Str, std::strlen(Str));
  return *this;
}

OStream &OStream::operator<<(std::string_view Str) {
  writeImpl(Str.data(), Str.size());
  return *this;
}

OStream &OStream::operator<<(const std::string &Str) {
  writeImpl(Str.data(), Str.size());
  return *this;
}

OStream &OStream::operator<<(int64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(uint64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(double D) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::writeHex(uint64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "0x%" PRIx64, N);
  writeImpl(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::leftJustify(std::string_view Str, unsigned Width) {
  *this << Str;
  if (Str.size() < Width)
    indent(Width - static_cast<unsigned>(Str.size()));
  return *this;
}

OStream &OStream::rightJustify(std::string_view Str, unsigned Width) {
  if (Str.size() < Width)
    indent(Width - static_cast<unsigned>(Str.size()));
  return *this << Str;
}

OStream &OStream::indent(unsigned N) {
  static const char Spaces[] = "                                ";
  while (N > 0) {
    unsigned Chunk = N < 32 ? N : 32;
    writeImpl(Spaces, Chunk);
    N -= Chunk;
  }
  return *this;
}

OStream &srp::outs() {
  static FileOStream Stream(stdout);
  return Stream;
}

OStream &srp::errs() {
  static FileOStream Stream(stderr);
  return Stream;
}
