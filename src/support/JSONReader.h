//===- JSONReader.h - Strict JSON parser ------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reading half of support/JSON.h: a small recursive-descent JSON
/// parser producing a JSONValue tree. Built for the serve protocol, whose
/// decoder faces adversarial input (srp-fuzz --serve feeds it garbage),
/// so the parser is strict and total: no exceptions, no recursion past a
/// fixed depth, no accepted extensions (comments, trailing commas,
/// unquoted keys, duplicate object keys are all errors), and every
/// failure is a diagnostic string rather than an abort.
///
/// Object member order is preserved and duplicate keys are rejected, so a
/// document has exactly one reading — request canonicalization
/// (core/Serve.h) depends on that.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_JSONREADER_H
#define SRP_SUPPORT_JSONREADER_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace srp {

/// One parsed JSON value. Numbers keep their integral identity when they
/// have one: an unsigned integer that fits uint64_t is Kind::Uint, a
/// negative integer that fits int64_t is Kind::Int, everything else
/// (fractions, exponents, out-of-range magnitudes) is Kind::Double.
class JSONValue {
public:
  enum class Kind : uint8_t {
    Null,
    Bool,
    Uint,
    Int,
    Double,
    String,
    Array,
    Object,
  };

  JSONValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }
  /// Any of the three numeric kinds.
  bool isNumber() const {
    return K == Kind::Uint || K == Kind::Int || K == Kind::Double;
  }
  /// A non-negative integer representable as uint64_t.
  bool isUint() const { return K == Kind::Uint; }

  bool asBool() const {
    assert(K == Kind::Bool);
    return B;
  }
  uint64_t asUint() const {
    assert(K == Kind::Uint);
    return U;
  }
  int64_t asInt() const {
    assert(K == Kind::Int);
    return I;
  }
  double asDouble() const {
    assert(K == Kind::Double);
    return D;
  }
  const std::string &asString() const {
    assert(K == Kind::String);
    return S;
  }

  /// Array elements / object member count.
  size_t size() const {
    assert(K == Kind::Array || K == Kind::Object);
    return K == Kind::Array ? Elems.size() : Members.size();
  }

  const JSONValue &at(size_t Index) const {
    assert(K == Kind::Array && Index < Elems.size());
    return Elems[Index];
  }

  /// Object members, in document order.
  const std::vector<std::pair<std::string, JSONValue>> &members() const {
    assert(K == Kind::Object);
    return Members;
  }

  /// The member named \p Key, or null when absent.
  const JSONValue *find(std::string_view Key) const {
    assert(K == Kind::Object);
    for (const auto &[Name, Value] : Members)
      if (Name == Key)
        return &Value;
    return nullptr;
  }

private:
  friend class JSONParser;

  Kind K = Kind::Null;
  bool B = false;
  uint64_t U = 0;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  std::vector<JSONValue> Elems;
  std::vector<std::pair<std::string, JSONValue>> Members;
};

/// Parses \p Text as exactly one JSON value (leading/trailing whitespace
/// allowed, anything else after the value is an error). On failure
/// returns false with \p Error set to "offset N: ..." — the offset lets
/// the serve protocol report where in a request frame decoding stopped.
/// Nesting deeper than 64 levels is rejected (the parser recurses).
bool parseJSON(std::string_view Text, JSONValue &Out, std::string &Error);

} // namespace srp

#endif // SRP_SUPPORT_JSONREADER_H
