//===- PagedMemory.h - Sparse paged word store -------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse 64-bit word store backed by zero-initialized 64 KiB pages.
/// Both execution engines (interp::Execution and the arch simulator)
/// model a flat address space with three far-apart regions — globals,
/// stack, heap — where unwritten words read as zero. A per-word hash map
/// gives that semantics but costs a hash probe per access; this store
/// gives the same semantics with a direct-mapped translation cache in
/// front of the page table, so the regions' working pages each settle
/// into their own cache slot and nearly every access is one mask and one
/// index.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_PAGEDMEMORY_H
#define SRP_SUPPORT_PAGEDMEMORY_H

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace srp {

/// Word-addressed sparse memory (callers shift byte addresses down by 3).
/// Unwritten words read as zero.
class PagedMemory {
public:
  uint64_t load(uint64_t Word) const {
    uint64_t P = Word >> PageWordBits;
    Slot &S = Cache[P & (NumSlots - 1)];
    if (S.Page != P) {
      auto It = Pages.find(P);
      if (It == Pages.end())
        return 0; // Absent pages stay uncached: a store must install one.
      S.Page = P;
      S.Data = It->second.get();
    }
    return S.Data[Word & (WordsPerPage - 1)];
  }

  void store(uint64_t Word, uint64_t Bits) {
    uint64_t P = Word >> PageWordBits;
    Slot &S = Cache[P & (NumSlots - 1)];
    if (S.Page != P) {
      std::unique_ptr<uint64_t[]> &Entry = Pages[P];
      if (!Entry)
        Entry = std::make_unique<uint64_t[]>(WordsPerPage); // zero-filled
      S.Page = P;
      S.Data = Entry.get();
    }
    S.Data[Word & (WordsPerPage - 1)] = Bits;
  }

private:
  static constexpr unsigned PageWordBits = 13; ///< 8 Ki words = 64 KiB
  static constexpr uint64_t WordsPerPage = 1ULL << PageWordBits;
  static constexpr unsigned NumSlots = 64;

  struct Slot {
    /// Word addresses are at most 2^61 (byte addresses >> 3), so ~0
    /// never collides with a real page index.
    uint64_t Page = ~0ULL;
    uint64_t *Data = nullptr;
  };

  mutable Slot Cache[NumSlots];
  std::unordered_map<uint64_t, std::unique_ptr<uint64_t[]>> Pages;
};

} // namespace srp

#endif // SRP_SUPPORT_PAGEDMEMORY_H
