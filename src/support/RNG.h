//===- RNG.h - Deterministic random number generation -----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic pseudo-random generator (SplitMix64). Workload
/// generators, property tests and the simulator's synthetic inputs all need
/// reproducible randomness that is identical across platforms and standard
/// library implementations, which std::mt19937 + distributions are not.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_RNG_H
#define SRP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace srp {

/// Deterministic SplitMix64 generator.
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Multiply-shift reduction; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a value uniformly distributed in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Prob (clamped to [0,1]).
  bool nextBool(double Prob) {
    if (Prob <= 0.0)
      return false;
    if (Prob >= 1.0)
      return true;
    return nextDouble() < Prob;
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  uint64_t State;
};

} // namespace srp

#endif // SRP_SUPPORT_RNG_H
