//===- Stats.cpp - Process-wide statistics registry ---------------------------===//

#include "support/Stats.h"

#include "support/OStream.h"
#include "support/StringUtils.h"

using namespace srp;

StatsRegistry &StatsRegistry::get() {
  static StatsRegistry Registry;
  return Registry;
}

namespace {
/// Innermost active capture on this thread (null: record globally).
thread_local StatsRegistry *ActiveCapture = nullptr;
} // namespace

StatsRegistry &StatsRegistry::current() {
  return ActiveCapture ? *ActiveCapture : get();
}

void StatsRegistry::merge(const StatsRegistry &Other) {
  for (const auto &[Name, Value] : Other.snapshot())
    add(Name, Value);
}

ScopedStatsCapture::ScopedStatsCapture() : Outer(ActiveCapture) {
  ActiveCapture = &Local;
}

ScopedStatsCapture::~ScopedStatsCapture() {
  ActiveCapture = Outer;
  StatsRegistry::current().merge(Local);
}

void StatsRegistry::add(std::string_view Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    Counters.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

uint64_t StatsRegistry::value(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

std::vector<std::pair<std::string, uint64_t>>
StatsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return {Counters.begin(), Counters.end()};
}

void StatsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters.clear();
}

bool StatsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.empty();
}

void StatsRegistry::report(OStream &OS) const {
  for (const auto &[Name, Value] : snapshot())
    OS << formatString("  %12llu  %s\n", (unsigned long long)Value,
                       Name.c_str());
}
