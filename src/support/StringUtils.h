//===- StringUtils.h - String helpers ---------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style string formatting and small string helpers shared by the IR
/// printer, the assembly printer and the bench harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_STRINGUTILS_H
#define SRP_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace srp {

/// Returns the printf-style formatting of \p Fmt with the given arguments.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits \p Str on \p Sep, dropping empty pieces.
std::vector<std::string_view> splitString(std::string_view Str, char Sep);

/// Returns \p Str with leading and trailing whitespace removed.
std::string_view trimString(std::string_view Str);

/// Returns true if \p Str begins with \p Prefix.
bool startsWith(std::string_view Str, std::string_view Prefix);

} // namespace srp

#endif // SRP_SUPPORT_STRINGUTILS_H
