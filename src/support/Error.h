//===- Error.h - Fatal error reporting --------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and an unreachable marker. The project does not use
/// C++ exceptions; unrecoverable conditions (verifier failures, malformed
/// inputs in tools) report and abort, while recoverable conditions (the IR
/// text parser) return error strings to the caller.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_ERROR_H
#define SRP_SUPPORT_ERROR_H

#include <string_view>

namespace srp {

/// Prints "fatal error: <message>" to stderr and aborts.
[[noreturn]] void fatalError(std::string_view Message);

/// Marks a point that must never execute; prints \p Message and aborts.
[[noreturn]] void unreachable(const char *Message);

} // namespace srp

#define SRP_UNREACHABLE(MSG) ::srp::unreachable(MSG)

#endif // SRP_SUPPORT_ERROR_H
