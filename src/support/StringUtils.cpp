//===- StringUtils.cpp - String helpers -----------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace srp;

std::string srp::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result(static_cast<size_t>(Size), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::vector<std::string_view> srp::splitString(std::string_view Str,
                                               char Sep) {
  std::vector<std::string_view> Pieces;
  size_t Begin = 0;
  while (Begin <= Str.size()) {
    size_t End = Str.find(Sep, Begin);
    if (End == std::string_view::npos)
      End = Str.size();
    if (End > Begin)
      Pieces.push_back(Str.substr(Begin, End - Begin));
    Begin = End + 1;
  }
  return Pieces;
}

std::string_view srp::trimString(std::string_view Str) {
  size_t Begin = Str.find_first_not_of(" \t\r\n");
  if (Begin == std::string_view::npos)
    return {};
  size_t End = Str.find_last_not_of(" \t\r\n");
  return Str.substr(Begin, End - Begin + 1);
}

bool srp::startsWith(std::string_view Str, std::string_view Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.substr(0, Prefix.size()) == Prefix;
}
