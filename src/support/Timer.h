//===- Timer.h - Wall-clock timing helpers ----------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped wall-clock timing for passes and promotion stages. A Timer is a
/// plain stopwatch over std::chrono::steady_clock; ScopedTimer accumulates
/// the elapsed time of its scope into a caller-owned microsecond counter,
/// which is how the pass manager and the promotion stages attribute time
/// without any global state (the process-wide aggregation happens in
/// StatsRegistry, see Stats.h).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_TIMER_H
#define SRP_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace srp {

/// A stopwatch over the monotonic clock.
class Timer {
public:
  Timer() : Start(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = std::chrono::steady_clock::now(); }

  /// Microseconds elapsed since construction or the last reset().
  uint64_t elapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }

private:
  std::chrono::steady_clock::time_point Start;
};

/// Adds the wall time of its scope to \p Counter (microseconds) on
/// destruction.
class ScopedTimer {
public:
  explicit ScopedTimer(uint64_t &Counter) : Counter(Counter) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() { Counter += T.elapsedMicros(); }

private:
  uint64_t &Counter;
  Timer T;
};

} // namespace srp

#endif // SRP_SUPPORT_TIMER_H
