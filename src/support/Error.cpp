//===- Error.cpp - Fatal error reporting ----------------------------------===//

#include "support/Error.h"

#include "support/OStream.h"

#include <cstdlib>

using namespace srp;

void srp::fatalError(std::string_view Message) {
  errs() << "fatal error: " << Message << '\n';
  errs().flush();
  std::abort();
}

void srp::unreachable(const char *Message) {
  errs() << "unreachable executed: " << Message << '\n';
  errs().flush();
  std::abort();
}
