//===- Stats.h - Process-wide statistics registry ---------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, thread-safe registry of named uint64 counters, in the
/// spirit of LLVM's -stats. Passes and promotion stages record work and
/// wall time here ("pass.promote.us", "pre.rename.us", ...); tools and
/// benches dump the registry with --stats. The registry is additive only:
/// concurrent pipelines from the parallel experiment driver may all record
/// into it, so per-run numbers that must stay deterministic (the simulator
/// counters) live in PipelineResult instead, never here.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_STATS_H
#define SRP_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace srp {

class OStream;

/// Thread-safe map of named counters. One process-wide instance is
/// reachable via StatsRegistry::get(); tests may construct their own.
class StatsRegistry {
public:
  /// The process-wide registry.
  static StatsRegistry &get();

  /// Adds \p Delta to the counter named \p Name (creating it at zero).
  void add(std::string_view Name, uint64_t Delta);

  /// Current value of \p Name; 0 if never recorded.
  uint64_t value(std::string_view Name) const;

  /// Snapshot of all counters, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> snapshot() const;

  /// Resets every counter (tests and repeated experiment batches).
  void clear();

  /// True if no counter was ever recorded (or clear() was just called).
  bool empty() const;

  /// Writes "  <value>  <name>" lines, sorted by name.
  void report(OStream &OS) const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, uint64_t, std::less<>> Counters;
};

} // namespace srp

#endif // SRP_SUPPORT_STATS_H
