//===- Stats.h - Process-wide statistics registry ---------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, thread-safe registry of named uint64 counters, in the
/// spirit of LLVM's -stats. Passes and promotion stages record work and
/// wall time here ("pass.promote.us", "pre.rename.us", ...); tools and
/// benches dump the registry with --stats. The registry is additive only:
/// concurrent pipelines from the parallel experiment driver may all record
/// into it, so per-run numbers that must stay deterministic (the simulator
/// counters) live in PipelineResult instead, never here.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_STATS_H
#define SRP_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace srp {

class OStream;

/// Thread-safe map of named counters. One process-wide instance is
/// reachable via StatsRegistry::get(); tests may construct their own.
class StatsRegistry {
public:
  /// The process-wide registry.
  static StatsRegistry &get();

  /// The registry recording sites should write to: the innermost
  /// ScopedStatsCapture on this thread, or the process-wide registry
  /// when none is active. Every recording site in the project goes
  /// through this, which is what makes per-request stats epochs exact
  /// in a long-lived server — a request's pipeline runs entirely on one
  /// worker thread, so a capture on that thread observes precisely that
  /// request's counters even while other requests record concurrently.
  static StatsRegistry &current();

  /// Adds every counter of \p Other into this registry.
  void merge(const StatsRegistry &Other);

  /// Adds \p Delta to the counter named \p Name (creating it at zero).
  void add(std::string_view Name, uint64_t Delta);

  /// Current value of \p Name; 0 if never recorded.
  uint64_t value(std::string_view Name) const;

  /// Snapshot of all counters, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> snapshot() const;

  /// Resets every counter (tests and repeated experiment batches).
  void clear();

  /// True if no counter was ever recorded (or clear() was just called).
  bool empty() const;

  /// Writes "  <value>  <name>" lines, sorted by name.
  void report(OStream &OS) const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, uint64_t, std::less<>> Counters;
};

/// One stats epoch: while alive, everything this thread records through
/// StatsRegistry::current() lands in a private registry instead of the
/// process-wide one; on destruction the epoch's counters are merged into
/// the enclosing scope (another capture, or the global registry), so
/// process totals still add up. Read the epoch's own numbers through
/// captured().
///
/// This is the fix for cumulative-stats reporting in long-lived
/// processes: srp-run wraps its pipeline in a capture so --stats and
/// --timing-json describe that run, and the serve daemon wraps each
/// request so a response's stats describe that request — not everything
/// the process did since startup.
///
/// Captures nest per thread and must be destroyed in LIFO order (scope
/// them). Work handed to other threads while a capture is alive records
/// into those threads' own scopes.
class ScopedStatsCapture {
public:
  ScopedStatsCapture();
  ~ScopedStatsCapture();
  ScopedStatsCapture(const ScopedStatsCapture &) = delete;
  ScopedStatsCapture &operator=(const ScopedStatsCapture &) = delete;

  /// The counters recorded during this epoch (so far).
  const StatsRegistry &captured() const { return Local; }

private:
  StatsRegistry Local;
  StatsRegistry *Outer; ///< Scope to merge into at destruction.
};

} // namespace srp

#endif // SRP_SUPPORT_STATS_H
