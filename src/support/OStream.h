//===- OStream.h - Lightweight output stream --------------------*- C++ -*-===//
//
// Part of the srp-alat project, reproducing "Speculative Register Promotion
// Using Advanced Load Address Table (ALAT)" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small raw_ostream-style output stream. The project avoids <iostream>
/// (static constructors, heavyweight formatting); this provides the subset
/// of formatted output the compiler, simulator and benches need.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_OSTREAM_H
#define SRP_SUPPORT_OSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace srp {

/// Abstract formatted output stream.
///
/// Concrete sinks override \c writeImpl. All operator<< overloads format
/// into a small stack buffer and forward to the sink.
class OStream {
public:
  virtual ~OStream();

  OStream &operator<<(char C);
  OStream &operator<<(const char *Str);
  OStream &operator<<(std::string_view Str);
  OStream &operator<<(const std::string &Str);
  OStream &operator<<(bool B) { return *this << (B ? "true" : "false"); }
  OStream &operator<<(int32_t N) { return *this << static_cast<int64_t>(N); }
  OStream &operator<<(uint32_t N) { return *this << static_cast<uint64_t>(N); }
  OStream &operator<<(int64_t N);
  OStream &operator<<(uint64_t N);
  OStream &operator<<(double D);

  /// Writes \p N in lower-case hexadecimal with a "0x" prefix.
  OStream &writeHex(uint64_t N);

  /// Writes \p Str left-justified in a field of \p Width columns.
  OStream &leftJustify(std::string_view Str, unsigned Width);

  /// Writes \p Str right-justified in a field of \p Width columns.
  OStream &rightJustify(std::string_view Str, unsigned Width);

  /// Writes \p N spaces.
  OStream &indent(unsigned N);

  /// Flushes the underlying sink (no-op for string sinks).
  virtual void flush() {}

protected:
  virtual void writeImpl(const char *Ptr, size_t Size) = 0;
};

/// Stream that appends to a caller-owned std::string.
class StringOStream final : public OStream {
public:
  explicit StringOStream(std::string &Buffer) : Buffer(Buffer) {}

private:
  void writeImpl(const char *Ptr, size_t Size) override {
    Buffer.append(Ptr, Size);
  }

  std::string &Buffer;
};

/// Stream over a stdio FILE handle. Does not own the handle.
class FileOStream final : public OStream {
public:
  explicit FileOStream(std::FILE *Handle) : Handle(Handle) {}

  void flush() override { std::fflush(Handle); }

private:
  void writeImpl(const char *Ptr, size_t Size) override {
    std::fwrite(Ptr, 1, Size, Handle);
  }

  std::FILE *Handle;
};

/// Returns the stream bound to stdout.
OStream &outs();

/// Returns the stream bound to stderr.
OStream &errs();

} // namespace srp

#endif // SRP_SUPPORT_OSTREAM_H
