//===- JSONReader.cpp - Strict JSON parser -------------------------------------===//

#include "support/JSONReader.h"

#include "support/StringUtils.h"

#include <cstdlib>

using namespace srp;

namespace srp {

/// Recursive-descent parser over a string_view. Position-tracking and
/// error reporting live here; JSONValue stays a plain tree.
class JSONParser {
public:
  JSONParser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JSONValue &Out) {
    skipWhitespace();
    if (!parseValue(Out, /*Depth=*/0))
      return false;
    skipWhitespace();
    if (Pos != Text.size())
      return fail("trailing characters after the value");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &Message) {
    Error = "offset " + std::to_string(Pos) + ": " + Message;
    return false;
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWhitespace() {
    while (!atEnd() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                        peek() == '\r'))
      ++Pos;
  }

  bool consumeKeyword(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail("invalid value");
    Pos += Word.size();
    return true;
  }

  bool parseValue(JSONValue &Out, unsigned Depth) {
    if (Depth >= MaxDepth)
      return fail("nesting deeper than 64 levels");
    if (atEnd())
      return fail("expected a value");
    switch (peek()) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = JSONValue::Kind::String;
      return parseString(Out.S);
    case 't':
      Out.K = JSONValue::Kind::Bool;
      Out.B = true;
      return consumeKeyword("true");
    case 'f':
      Out.K = JSONValue::Kind::Bool;
      Out.B = false;
      return consumeKeyword("false");
    case 'n':
      Out.K = JSONValue::Kind::Null;
      return consumeKeyword("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JSONValue &Out, unsigned Depth) {
    Out.K = JSONValue::Kind::Object;
    ++Pos; // '{'
    skipWhitespace();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWhitespace();
      if (atEnd() || peek() != '"')
        return fail("expected an object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      if (Out.find(Key))
        return fail("duplicate key '" + Key + "'");
      skipWhitespace();
      if (atEnd() || peek() != ':')
        return fail("expected ':' after the key");
      ++Pos;
      skipWhitespace();
      JSONValue Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Member));
      skipWhitespace();
      if (atEnd())
        return fail("unterminated object");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JSONValue &Out, unsigned Depth) {
    Out.K = JSONValue::Kind::Array;
    ++Pos; // '['
    skipWhitespace();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWhitespace();
      JSONValue Elem;
      if (!parseValue(Elem, Depth + 1))
        return false;
      Out.Elems.push_back(std::move(Elem));
      skipWhitespace();
      if (atEnd())
        return fail("unterminated array");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseHex4(unsigned &Out) {
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      if (atEnd())
        return fail("unterminated \\u escape");
      char C = peek();
      unsigned Digit;
      if (C >= '0' && C <= '9')
        Digit = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Digit = static_cast<unsigned>(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        Digit = static_cast<unsigned>(C - 'A') + 10;
      else
        return fail("invalid \\u escape digit");
      Out = Out * 16 + Digit;
      ++Pos;
    }
    return true;
  }

  /// Appends \p Code as UTF-8. The writer only ever emits \uXXXX for
  /// control characters, but the reader accepts the full BMP (surrogate
  /// pairs are rejected — the protocol is ASCII-by-construction and a
  /// lone surrogate is the common fuzzer-found crash in lax parsers).
  bool appendCodepoint(unsigned Code, std::string &Out) {
    if (Code >= 0xd800 && Code <= 0xdfff)
      return fail("surrogate \\u escapes are not supported");
    if (Code < 0x80) {
      Out.push_back(static_cast<char>(Code));
    } else if (Code < 0x800) {
      Out.push_back(static_cast<char>(0xc0 | (Code >> 6)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3f)));
    } else {
      Out.push_back(static_cast<char>(0xe0 | (Code >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3f)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3f)));
    }
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    for (;;) {
      if (atEnd())
        return fail("unterminated string");
      char C = peek();
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      ++Pos;
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (atEnd())
        return fail("unterminated escape");
      char E = peek();
      ++Pos;
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        unsigned Code;
        if (!parseHex4(Code) || !appendCodepoint(Code, Out))
          return false;
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
  }

  bool parseNumber(JSONValue &Out) {
    size_t Start = Pos;
    bool Negative = false;
    if (!atEnd() && peek() == '-') {
      Negative = true;
      ++Pos;
    }
    if (atEnd() || peek() < '0' || peek() > '9')
      return fail("invalid number");
    // JSON forbids leading zeros ("01").
    if (peek() == '0' && Pos + 1 < Text.size() && Text[Pos + 1] >= '0' &&
        Text[Pos + 1] <= '9')
      return fail("leading zero in number");
    bool Integral = true;
    bool Overflow = false;
    uint64_t Magnitude = 0;
    while (!atEnd() && peek() >= '0' && peek() <= '9') {
      uint64_t Digit = static_cast<uint64_t>(peek() - '0');
      if (Magnitude > (UINT64_MAX - Digit) / 10)
        Overflow = true;
      else
        Magnitude = Magnitude * 10 + Digit;
      ++Pos;
    }
    if (!atEnd() && peek() == '.') {
      Integral = false;
      ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return fail("digit expected after '.'");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      Integral = false;
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return fail("digit expected in exponent");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (Integral && !Overflow && !Negative) {
      Out.K = JSONValue::Kind::Uint;
      Out.U = Magnitude;
      return true;
    }
    if (Integral && !Overflow && Negative &&
        Magnitude <= static_cast<uint64_t>(INT64_MAX) + 1) {
      Out.K = JSONValue::Kind::Int;
      Out.I = Magnitude == static_cast<uint64_t>(INT64_MAX) + 1
                  ? INT64_MIN
                  : -static_cast<int64_t>(Magnitude);
      return true;
    }
    Out.K = JSONValue::Kind::Double;
    std::string Token(Text.substr(Start, Pos - Start));
    Out.D = std::strtod(Token.c_str(), nullptr);
    return true;
  }

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace srp

bool srp::parseJSON(std::string_view Text, JSONValue &Out,
                    std::string &Error) {
  Out = JSONValue();
  JSONParser Parser(Text, Error);
  return Parser.parse(Out);
}
