//===- Arena.cpp - Bump-pointer allocation ---------------------------------===//

#include "support/Arena.h"

#include "support/Stats.h"

#include <algorithm>

using namespace srp;

#ifdef SRP_ARENA_ASAN
static void poison(const void *P, size_t N) {
  __asan_poison_memory_region(P, N);
}
static void unpoison(const void *P, size_t N) {
  __asan_unpoison_memory_region(P, N);
}
#else
static void poison(const void *, size_t) {}
static void unpoison(const void *, size_t) {}
#endif

void *Arena::allocate(size_t Size, size_t Align) {
  // ASan poisoning works at 8-byte shadow granularity; rounding every
  // request keeps allocation boundaries on granule boundaries so a
  // neighbour's redzone never overlaps live bytes.
  Align = std::max<size_t>(Align, 8);
  Size = (Size + 7) & ~size_t(7);

  char *P = reinterpret_cast<char *>(
      (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~uintptr_t(Align - 1));
  if (!Cur || P + Size > End) {
    newSlab(Size + Align);
    P = reinterpret_cast<char *>(
        (reinterpret_cast<uintptr_t>(Cur) + Align - 1) &
        ~uintptr_t(Align - 1));
  }
  Cur = P + Size;
  BytesAllocated += Size;
  unpoison(P, Size);
  return P;
}

void Arena::newSlab(size_t Min) {
  // Advance through recycled slabs first (reset() rewinds CurSlab).
  while (!Slabs.empty() && CurSlab + 1 < Slabs.size()) {
    Slab &S = Slabs[++CurSlab];
    if (S.Size >= Min) {
      Cur = S.Base;
      End = S.Base + S.Size;
      return;
    }
  }
  size_t Want = Slabs.empty()
                    ? FirstSlabBytes
                    : std::min(Slabs.back().Size * 2, MaxSlabBytes);
  Want = std::max(Want, Min);
  Slab S;
  S.Base = static_cast<char *>(::operator new(Want));
  S.Size = Want;
  poison(S.Base, S.Size);
  Slabs.push_back(S);
  CurSlab = Slabs.size() - 1;
  Cur = S.Base;
  End = S.Base + S.Size;
}

void Arena::reset() {
  for (auto It = Dtors.rbegin(), E = Dtors.rend(); It != E; ++It)
    It->Fn(It->Obj);
  Dtors.clear();
  Interned.clear();
  publishStats(/*CountReset=*/true);
  BytesAllocated = 0;
  BytesPublished = 0;
  for (Slab &S : Slabs)
    poison(S.Base, S.Size);
  CurSlab = 0;
  Cur = Slabs.empty() ? nullptr : Slabs.front().Base;
  End = Slabs.empty() ? nullptr : Slabs.front().Base + Slabs.front().Size;
}

Arena::~Arena() {
  for (auto It = Dtors.rbegin(), E = Dtors.rend(); It != E; ++It)
    It->Fn(It->Obj);
  publishStats(/*CountReset=*/false);
  for (Slab &S : Slabs) {
    unpoison(S.Base, S.Size);
    ::operator delete(S.Base);
  }
}

void Arena::publishStats(bool CountReset) {
  StatsRegistry &SR = StatsRegistry::current();
  if (BytesAllocated > BytesPublished) {
    SR.add("alloc.arena.bytes", BytesAllocated - BytesPublished);
    BytesPublished = BytesAllocated;
  }
  if (Slabs.size() > SlabsPublished) {
    SR.add("alloc.arena.slabs", Slabs.size() - SlabsPublished);
    SlabsPublished = Slabs.size();
  }
  if (CountReset)
    SR.add("alloc.arena.resets", 1);
}

std::string_view Arena::intern(std::string_view S) {
  auto It = Interned.find(S);
  if (It != Interned.end())
    return It->first;
  char *Mem = static_cast<char *>(allocate(S.size() ? S.size() : 1, 1));
  if (!S.empty())
    std::memcpy(Mem, S.data(), S.size());
  std::string_view Stored(Mem, S.size());
  Interned.emplace(Stored, true);
  return Stored;
}
