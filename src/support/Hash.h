//===- Hash.h - Stable content hashing --------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a hashing for content addressing (the serve result cache keys,
/// module fingerprints). The function is fixed by specification — not
/// std::hash, whose value is implementation-defined — so fingerprints are
/// stable across builds, platforms and standard libraries, and may be
/// recorded in reports and compared between runs.
///
/// Collision policy: every consumer that addresses by hash must either
/// tolerate collisions or, like core::ResultCache, store the full key and
/// compare it on lookup. The hash is an index, never an identity.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_HASH_H
#define SRP_SUPPORT_HASH_H

#include <cstdint>
#include <string_view>

namespace srp {

inline constexpr uint64_t Fnv1a64Offset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t Fnv1a64Prime = 0x100000001b3ULL;

/// FNV-1a over \p Bytes, continuing from \p State (chain calls to hash
/// multi-part content without concatenating it first).
constexpr uint64_t fnv1a64(std::string_view Bytes,
                           uint64_t State = Fnv1a64Offset) {
  for (char C : Bytes) {
    State ^= static_cast<uint8_t>(C);
    State *= Fnv1a64Prime;
  }
  return State;
}

/// Mixes an integer into an FNV-1a chain (hashed as 8 little-endian
/// bytes, so the result is endian-independent by construction).
constexpr uint64_t fnv1a64(uint64_t Value, uint64_t State) {
  for (int I = 0; I < 8; ++I) {
    State ^= (Value >> (I * 8)) & 0xff;
    State *= Fnv1a64Prime;
  }
  return State;
}

} // namespace srp

#endif // SRP_SUPPORT_HASH_H
