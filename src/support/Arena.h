//===- Arena.h - Bump-pointer allocation --------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A slab-based bump allocator for objects whose lifetime ends together —
/// IR statements, blocks and functions of one module, HSSA node records of
/// one promotion run, MIR of one lowering. Allocation is a pointer bump
/// (no per-node malloc/free), addresses are stable for the arena's whole
/// life (IR pointers are map keys everywhere), and teardown is one sweep:
/// registered destructors run in reverse allocation order, then the slabs
/// are reused by reset() or freed by the destructor.
///
/// Under AddressSanitizer every slab's unused tail is poisoned and reset()
/// re-poisons recycled memory, so use-after-reset and past-the-bump reads
/// trip ASan just like a heap use-after-free would — arenas must not
/// regress sanitizer coverage (tested by ArenaTest.AsanPoisoning).
///
/// ArenaVector<T> is a trivially-copyable-element vector whose storage
/// bumps from an arena: growth abandons the old buffer (it is reclaimed
/// wholesale at reset), so no free-list or size bookkeeping exists.
/// Arena::intern deduplicates strings into arena-backed storage and hands
/// out string_views that live as long as the arena.
///
/// Counters: destruction and reset() publish slab bytes into the
/// process-wide StatsRegistry (`alloc.arena.bytes`, `alloc.arena.slabs`,
/// `alloc.arena.resets`) — coarse events only, never per allocation.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_ARENA_H
#define SRP_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define SRP_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SRP_ARENA_ASAN 1
#endif
#endif

#ifdef SRP_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace srp {

/// Slab-based bump allocator (see file comment).
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena();

  /// Bumps off \p Size bytes at \p Align alignment. Never returns null;
  /// the memory is uninitialized and lives until reset() or destruction.
  void *allocate(size_t Size, size_t Align);

  /// Constructs a T in the arena. Non-trivially-destructible types are
  /// queued for destruction (reverse allocation order) at reset() /
  /// teardown; erasing the object from a container earlier just drops
  /// the pointer — the destructor still runs at arena teardown, so T's
  /// destructor must stay valid until then.
  template <typename T, typename... Args> T *create(Args &&...A) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = ::new (Mem) T(std::forward<Args>(A)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Copies \p N Ts (trivially copyable) into the arena.
  template <typename T> T *copyArray(const T *Src, size_t N) {
    static_assert(std::is_trivially_copyable_v<T>);
    T *Mem = static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
    if (N)
      std::memcpy(Mem, Src, N * sizeof(T));
    return Mem;
  }

  /// Deduplicating string storage: equal inputs return the same
  /// arena-backed view, valid until reset() or destruction.
  std::string_view intern(std::string_view S);

  /// Runs queued destructors, forgets every allocation and recycles the
  /// slabs (re-poisoned under ASan). Pointers handed out before the
  /// reset are dead.
  void reset();

  /// Bytes handed out since construction or the last reset().
  size_t bytesAllocated() const { return BytesAllocated; }

  /// Publishes any not-yet-published bytes/slabs into the StatsRegistry.
  /// Publication is delta-based, so flushing a live arena and later
  /// destroying it never double-counts; reporting tools call this on
  /// still-live arenas (the module outlives `srp-run --stats`).
  void flushStats() { publishStats(/*CountReset=*/false); }

  /// Slabs currently held (allocation high-water mark; reset keeps them).
  size_t numSlabs() const { return Slabs.size(); }

private:
  struct Slab {
    char *Base = nullptr;
    size_t Size = 0;
  };
  struct DtorEntry {
    void *Obj;
    void (*Fn)(void *);
  };

  /// Starts a fresh or recycled slab able to hold \p Min bytes.
  void newSlab(size_t Min);
  void publishStats(bool CountReset);

  static constexpr size_t FirstSlabBytes = 64 << 10;
  static constexpr size_t MaxSlabBytes = 1 << 20;

  std::vector<Slab> Slabs;
  size_t CurSlab = 0; ///< Valid only when !Slabs.empty().
  char *Cur = nullptr;
  char *End = nullptr;
  size_t BytesAllocated = 0;
  size_t BytesPublished = 0;
  size_t SlabsPublished = 0;
  std::vector<DtorEntry> Dtors;
  /// Interned strings; keys are arena-backed views so the table owns no
  /// character storage. std::map keeps iteration deterministic.
  std::map<std::string_view, bool> Interned;
};

/// Vector of trivially copyable elements in arena storage. Growth bumps a
/// doubled buffer and abandons the old one; reclaim happens wholesale at
/// Arena::reset(). The arena must outlive the vector's use (not its
/// destruction — there is nothing to destroy).
template <typename T> class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaVector elements are reclaimed without destruction");

public:
  explicit ArenaVector(Arena &A) : A(&A) {}

  void push_back(const T &V) {
    if (Count == Cap)
      grow();
    Data[Count++] = V;
  }
  void pop_back() {
    assert(Count && "pop_back on empty ArenaVector");
    --Count;
  }
  void clear() { Count = 0; }

  T &operator[](size_t I) {
    assert(I < Count);
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Count);
    return Data[I];
  }
  T &back() { return (*this)[Count - 1]; }

  T *begin() { return Data; }
  T *end() { return Data + Count; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Count; }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

private:
  void grow() {
    size_t NewCap = Cap ? Cap * 2 : 8;
    T *NewData = static_cast<T *>(A->allocate(NewCap * sizeof(T), alignof(T)));
    if (Count)
      std::memcpy(NewData, Data, Count * sizeof(T));
    Data = NewData;
    Cap = NewCap;
  }

  Arena *A;
  T *Data = nullptr;
  size_t Count = 0;
  size_t Cap = 0;
};

} // namespace srp

#endif // SRP_SUPPORT_ARENA_H
