//===- JSON.h - Deterministic streaming JSON writer -------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny streaming JSON emitter for machine-readable reports (the proof
/// witnesses analysis::Witness.h produces). The writer is deterministic by
/// construction: output is exactly the sequence of begin/key/value calls,
/// with fixed two-space indentation and no hash-ordered containers behind
/// it — callers emit keys in a fixed order and byte-stable files fall out.
///
/// Usage:
///   JSONWriter W(OS);
///   W.beginObject();
///   W.key("answer").value(42);
///   W.key("list").beginArray().value("a").value("b").endArray();
///   W.endObject();
///
/// The writer validates nesting with assertions only; it is a serializer
/// for trusted in-process data, not a parser.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SUPPORT_JSON_H
#define SRP_SUPPORT_JSON_H

#include "support/OStream.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace srp {

/// Streaming JSON emitter over an OStream (see file comment).
class JSONWriter {
public:
  /// \p Compact emits the value on a single line with no whitespace —
  /// the framing the newline-delimited serve protocol requires, where a
  /// literal '\n' inside a response would split it into two frames.
  explicit JSONWriter(OStream &OS, bool Compact = false)
      : OS(OS), Compact(Compact) {}

  JSONWriter &beginObject();
  JSONWriter &endObject();
  JSONWriter &beginArray();
  JSONWriter &endArray();

  /// Emits a member key inside an object; the next value/begin call is
  /// its value.
  JSONWriter &key(std::string_view K);

  JSONWriter &value(std::string_view S);
  JSONWriter &value(const char *S) { return value(std::string_view(S)); }
  JSONWriter &value(int64_t N);
  JSONWriter &value(uint64_t N);
  JSONWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JSONWriter &value(unsigned N) { return value(static_cast<uint64_t>(N)); }
  JSONWriter &value(bool B);
  JSONWriter &null();

  /// True once the single top-level value is complete.
  bool done() const { return Stack.empty() && SawTopLevel; }

private:
  enum class Scope : uint8_t { Object, Array };

  void beforeValue();
  void newline();
  void writeEscaped(std::string_view S);

  OStream &OS;
  bool Compact;
  struct Frame {
    Scope S;
    bool HasMembers = false;
    bool KeyPending = false;
  };
  std::vector<Frame> Stack;
  bool SawTopLevel = false;
};

} // namespace srp

#endif // SRP_SUPPORT_JSON_H
