//===- JSON.cpp - Deterministic streaming JSON writer -------------------------===//

#include "support/JSON.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace srp;

void JSONWriter::newline() {
  if (Compact)
    return;
  OS << '\n';
  OS.indent(2 * static_cast<unsigned>(Stack.size()));
}

void JSONWriter::beforeValue() {
  if (Stack.empty()) {
    assert(!SawTopLevel && "second top-level value");
    SawTopLevel = true;
    return;
  }
  Frame &F = Stack.back();
  if (F.S == Scope::Object) {
    assert(F.KeyPending && "object member without a key");
    F.KeyPending = false;
    return;
  }
  if (F.HasMembers)
    OS << ',';
  F.HasMembers = true;
  newline();
}

JSONWriter &JSONWriter::beginObject() {
  beforeValue();
  Stack.push_back({Scope::Object, false, false});
  OS << '{';
  return *this;
}

JSONWriter &JSONWriter::endObject() {
  assert(!Stack.empty() && Stack.back().S == Scope::Object &&
         !Stack.back().KeyPending && "unbalanced endObject");
  bool HadMembers = Stack.back().HasMembers;
  Stack.pop_back();
  if (HadMembers)
    newline();
  OS << '}';
  return *this;
}

JSONWriter &JSONWriter::beginArray() {
  beforeValue();
  Stack.push_back({Scope::Array, false, false});
  OS << '[';
  return *this;
}

JSONWriter &JSONWriter::endArray() {
  assert(!Stack.empty() && Stack.back().S == Scope::Array &&
         "unbalanced endArray");
  bool HadMembers = Stack.back().HasMembers;
  Stack.pop_back();
  if (HadMembers)
    newline();
  OS << ']';
  return *this;
}

JSONWriter &JSONWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back().S == Scope::Object &&
         !Stack.back().KeyPending && "key outside an object");
  Frame &F = Stack.back();
  if (F.HasMembers)
    OS << ',';
  F.HasMembers = true;
  F.KeyPending = true;
  newline();
  writeEscaped(K);
  OS << (Compact ? ":" : ": ");
  return *this;
}

void JSONWriter::writeEscaped(std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        OS << formatString("\\u%04x", C);
      else
        OS << C;
    }
  }
  OS << '"';
}

JSONWriter &JSONWriter::value(std::string_view S) {
  beforeValue();
  writeEscaped(S);
  return *this;
}

JSONWriter &JSONWriter::value(int64_t N) {
  beforeValue();
  OS << N;
  return *this;
}

JSONWriter &JSONWriter::value(uint64_t N) {
  beforeValue();
  OS << N;
  return *this;
}

JSONWriter &JSONWriter::value(bool B) {
  beforeValue();
  OS << (B ? "true" : "false");
  return *this;
}

JSONWriter &JSONWriter::null() {
  beforeValue();
  OS << "null";
  return *this;
}
