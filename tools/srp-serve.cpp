//===- srp-serve.cpp - Promotion-as-a-service daemon ---------------------------===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving daemon over core::ServerCore (DESIGN.md §8): accepts
/// newline-delimited JSON requests on stdin (default), a loopback TCP
/// port, or a Unix-domain socket; compiles and simulates the requested
/// (workload|program, config) pairs on the shared thread pool; answers
/// repeats byte-identically from the content-addressed result cache.
///
///   srp-serve [--stdio] [--tcp=PORT] [--unix=PATH] [-jN]
///             [--cache-mb=N] [--cache-shards=N] [--max-scale=N]
///             [--fuel=N]
///
/// Exit codes follow the house convention: 0 clean shutdown / EOF,
/// 1 runtime failure (bind, accept loop), 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "core/Serve.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include <csignal>

using namespace srp;

namespace {

struct Options {
  enum class Transport { Stdio, Tcp, Unix } Mode = Transport::Stdio;
  unsigned TcpPort = 0;
  std::string UnixPath;
  core::ServeOptions Serve;
};

bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.substr(0, Prefix.size()) == Prefix;
}

/// Strict decimal parse (see srp-run): rejects empty, non-digit and
/// overlong input instead of silently reading 0.
bool parseUnsignedValue(std::string_view Value, uint64_t &Out) {
  if (Value.empty() || Value.size() > 12)
    return false;
  uint64_t V = 0;
  for (char C : Value) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

void usage(std::FILE *To) {
  std::fputs(
      "usage: srp-serve [--stdio | --tcp=PORT | --unix=PATH] [options]\n"
      "\n"
      "Newline-delimited JSON promotion service (protocol: DESIGN.md §8).\n"
      "\n"
      "transports (default --stdio):\n"
      "  --stdio            requests on stdin, responses on stdout\n"
      "  --tcp=PORT         listen on 127.0.0.1:PORT\n"
      "  --unix=PATH        listen on a Unix-domain socket at PATH\n"
      "\n"
      "options:\n"
      "  -jN                concurrent pipeline runs (default: hardware)\n"
      "  --cache-mb=N       result cache byte budget (default 256)\n"
      "  --cache-shards=N   result cache shard count (default 16)\n"
      "  --max-scale=N      largest accepted train/ref scale (default 64)\n"
      "  --fuel=N           interpreter fuel per run (part of cache key)\n",
      To);
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  uint64_t CacheMb = 256, CacheShards = 16;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    uint64_t Value = 0;
    if (Arg == "--stdio") {
      Opts.Mode = Options::Transport::Stdio;
    } else if (startsWith(Arg, "--tcp=")) {
      if (!parseUnsignedValue(Arg.substr(6), Value) || Value == 0 ||
          Value > 65535) {
        std::fprintf(stderr, "srp-serve: bad --tcp port\n");
        return false;
      }
      Opts.Mode = Options::Transport::Tcp;
      Opts.TcpPort = static_cast<unsigned>(Value);
    } else if (startsWith(Arg, "--unix=")) {
      Opts.Mode = Options::Transport::Unix;
      Opts.UnixPath = std::string(Arg.substr(7));
      if (Opts.UnixPath.empty()) {
        std::fprintf(stderr, "srp-serve: empty --unix path\n");
        return false;
      }
    } else if (startsWith(Arg, "-j")) {
      if (!parseUnsignedValue(Arg.substr(2), Value) || Value == 0) {
        std::fprintf(stderr, "srp-serve: bad -jN\n");
        return false;
      }
      Opts.Serve.Threads = static_cast<unsigned>(Value);
    } else if (startsWith(Arg, "--cache-mb=")) {
      if (!parseUnsignedValue(Arg.substr(11), CacheMb) || CacheMb == 0) {
        std::fprintf(stderr, "srp-serve: bad --cache-mb\n");
        return false;
      }
    } else if (startsWith(Arg, "--cache-shards=")) {
      if (!parseUnsignedValue(Arg.substr(15), CacheShards) ||
          CacheShards == 0 || CacheShards > 4096) {
        std::fprintf(stderr, "srp-serve: bad --cache-shards\n");
        return false;
      }
    } else if (startsWith(Arg, "--max-scale=")) {
      if (!parseUnsignedValue(Arg.substr(12), Opts.Serve.MaxScale) ||
          Opts.Serve.MaxScale == 0) {
        std::fprintf(stderr, "srp-serve: bad --max-scale\n");
        return false;
      }
    } else if (startsWith(Arg, "--fuel=")) {
      if (!parseUnsignedValue(Arg.substr(7), Opts.Serve.InterpFuel) ||
          Opts.Serve.InterpFuel == 0) {
        std::fprintf(stderr, "srp-serve: bad --fuel\n");
        return false;
      }
    } else if (Arg == "--help" || Arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "srp-serve: unknown option '%s'\n",
                   std::string(Arg).c_str());
      return false;
    }
  }
  Opts.Serve.Cache.ByteBudget = static_cast<size_t>(CacheMb) << 20;
  Opts.Serve.Cache.Shards = static_cast<unsigned>(CacheShards);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(stderr);
    return 2;
  }

  // A client vanishing mid-response must surface as a send error on
  // that connection, not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  Opts.Serve.Workloads = workloads::standardWorkloads();
  core::ServerCore Core(std::move(Opts.Serve));

  if (Opts.Mode == Options::Transport::Stdio)
    return core::runStdioServer(Core, stdin, stdout);

  std::string Error;
  int ListenFd = Opts.Mode == Options::Transport::Tcp
                     ? core::listenTcp(static_cast<uint16_t>(Opts.TcpPort),
                                       Error)
                     : core::listenUnix(Opts.UnixPath, Error);
  if (ListenFd < 0) {
    std::fprintf(stderr, "srp-serve: %s\n", Error.c_str());
    return 1;
  }
  if (Opts.Mode == Options::Transport::Tcp)
    std::fprintf(stderr, "srp-serve: listening on 127.0.0.1:%u\n",
                 Opts.TcpPort);
  else
    std::fprintf(stderr, "srp-serve: listening on %s\n",
                 Opts.UnixPath.c_str());
  return core::runSocketServer(Core, ListenFd);
}
