#!/usr/bin/env python3
"""Compare two srp-bench/1 reports (tools/srp-bench, srp-run --timing-json).

    bench_diff.py BASELINE.json CURRENT.json [options]

Two independent gates:

  counters   The deterministic fingerprint (sim.* / promotion.*) must be
             byte-identical: it is machine-independent, so any drift
             means the pipeline's behaviour changed, not the weather.
             Compared only when both reports ran the same grid shape
             (smoke flag and workload/config lists); a scale mismatch
             skips the gate with a warning rather than reporting
             nonsense.

  wall       wall_clock_us.{j1_p50,jn_p50} may not exceed baseline by
             more than --max-regress (default 10%). Wall clock is only
             meaningful between runs on the same machine — CI builds
             the merge-base and the head on the same runner and diffs
             those, rather than comparing against a baseline recorded
             elsewhere.

Exit status: 0 clean, 1 regression or fingerprint drift, 2 usage.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    if report.get("schema") != "srp-bench/1":
        sys.exit(f"bench_diff: {path}: not an srp-bench/1 report")
    return report


def same_grid(a, b):
    return (
        a.get("smoke") == b.get("smoke")
        and a.get("grid", {}).get("workloads") == b.get("grid", {}).get("workloads")
        and a.get("grid", {}).get("configs") == b.get("grid", {}).get("configs")
    )


def diff_counters(base, cur):
    failures = []
    bc, cc = base.get("counters", {}), cur.get("counters", {})
    for key in sorted(set(bc) | set(cc)):
        if bc.get(key) != cc.get(key):
            failures.append(
                f"  counter {key}: baseline {bc.get(key)} != current {cc.get(key)}"
            )
    return failures


def diff_wall(base, cur, max_regress):
    failures = []
    bw, cw = base.get("wall_clock_us", {}), cur.get("wall_clock_us", {})
    for key in ("j1_p50", "jn_p50"):
        b, c = bw.get(key), cw.get(key)
        if not b or c is None:
            continue
        ratio = c / b
        marker = ""
        if ratio > 1.0 + max_regress:
            failures.append(
                f"  wall {key}: {b} us -> {c} us "
                f"({ratio:+.1%} vs +{max_regress:.0%} allowed)"
            )
            marker = "  <-- REGRESSION"
        print(f"wall {key:8} {b:>10} us -> {c:>10} us  ({ratio - 1:+7.1%}){marker}")
    return failures


def print_pass_table(base, cur):
    bp, cp = base.get("passes", {}), cur.get("passes", {})
    names = [n for n in bp if n in cp]
    if not names:
        return
    print(f"{'pass':12} {'base p50':>10} {'cur p50':>10} {'delta':>8}")
    for name in names:
        b, c = bp[name].get("p50_us", 0), cp[name].get("p50_us", 0)
        delta = f"{(c / b - 1):+7.1%}" if b else "    n/a"
        print(f"{name:12} {b:>10} {c:>10} {delta:>8}")


def main():
    ap = argparse.ArgumentParser(
        description="diff two srp-bench/1 reports", add_help=True
    )
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="allowed wall-clock growth (default 0.10 = 10%%)",
    )
    ap.add_argument(
        "--no-wall",
        action="store_true",
        help="skip the wall-clock gate (cross-machine comparisons)",
    )
    ap.add_argument(
        "--no-counters", action="store_true", help="skip the fingerprint gate"
    )
    args = ap.parse_args()

    base, cur = load(args.baseline), load(args.current)
    print(
        f"baseline: {args.baseline} (label={base.get('label')!r}, "
        f"smoke={base.get('smoke')}, repeat={base.get('repeat')})"
    )
    print(
        f"current:  {args.current} (label={cur.get('label')!r}, "
        f"smoke={cur.get('smoke')}, repeat={cur.get('repeat')})"
    )

    failures = []
    if not args.no_counters:
        if same_grid(base, cur):
            drift = diff_counters(base, cur)
            if drift:
                print("counter fingerprint DRIFTED:")
                for line in drift:
                    print(line)
                failures += drift
            else:
                print("counter fingerprint: identical")
        else:
            print(
                "warning: grids differ (smoke/workloads/configs); "
                "skipping the counter gate",
                file=sys.stderr,
            )

    if not args.no_wall:
        failures += diff_wall(base, cur, args.max_regress)
        print_pass_table(base, cur)

    if failures:
        print(f"bench_diff: FAIL ({len(failures)} gate violation(s))")
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
