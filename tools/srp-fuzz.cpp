//===- srp-fuzz.cpp - Differential fuzzing driver ------------------------------===//
//
// Coverage-guided differential fuzzing of the whole promotion pipeline
// (see fuzz/Fuzzer.h). Every iteration generates a random program,
// promotes it under one strategy, and runs the differential oracle
// (valid/DiffOracle.h): interpreter agreement, final-memory agreement,
// speculative non-interference, and recovery correctness under injected
// ALAT faults. Any disagreement — or any pipeline abort on generated
// input — is a finding; findings are delta-debugged to minimal .sir
// repros and written to --repro-dir with their replay triple.
//
//   srp-fuzz [options]
//     --iterations=N    oracle runs (default 1000; 0 with --seconds for
//                       a pure time budget)
//     --seconds=N       wall-clock budget (stops at whichever comes first)
//     -jN               worker threads (results independent of N)
//     --seed=N          master seed (default 1)
//     --no-faults       skip the fault-injection schedules
//     --fault-plans=N   fault schedules per program (default 2)
//     --no-minimize     keep findings at generated size
//     --repro-dir=PATH  where minimized repros go (default fuzz-repros)
//     --max-findings=N  stop collecting after N findings (default 10)
//     --taint           label a deterministic subset of each program's
//                       globals `secret`; the oracle then cross-checks
//                       the static TaintFlow verdict against the
//                       interpreter's shadow-taint run and reports any
//                       static-PASS/dynamic-LEAK disagreement as a
//                       taint-disagree finding
//     --quiet           suppress per-batch progress
//
//   srp-fuzz --replay=SHAPE:PROG:CFG:FAULT
//     Re-run one finding's triple and report the oracle verdict. The
//     triple is printed with every finding and embedded in each repro
//     file header. Combine with --taint to replay a taint-mode finding
//     (the secret labels are derived from the same seeds).
//
//   srp-fuzz --serve
//     Fuzz the srp-serve protocol stack instead (fuzz/ServeFuzzer.h):
//     seed-derived byte streams of mutated, truncated, pipelined and
//     garbage NDJSON frames, checked for chunking-independent framing,
//     one well-formed response per frame, and repeat determinism.
//     --iterations/--threads/--seed/--repro-dir/--max-findings apply;
//     findings replay with --replay-serve=SEED.
//
// Exit status (matching srp-run lint): 0 clean sweep, 1 findings (or
// replay mismatch), 2 usage errors.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Minimizer.h"
#include "fuzz/ServeFuzzer.h"
#include "support/OStream.h"
#include "support/StringUtils.h"

#include <cstdlib>
#include <string>

using namespace srp;

namespace {

struct Options {
  fuzz::FuzzOptions Fuzz;
  std::string Replay;
  std::string ReplayServe;
  bool Serve = false;
  bool Quiet = false;
};

bool parseU64Value(std::string_view Value, uint64_t &Out) {
  if (Value.empty() || Value.size() > 19)
    return false;
  uint64_t V = 0;
  for (char C : Value) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  bool SecondsSet = false;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    uint64_t V = 0;
    if (startsWith(Arg, "--iterations=")) {
      if (!parseU64Value(Arg.substr(13), Opts.Fuzz.Iterations))
        return false;
    } else if (startsWith(Arg, "--seconds=")) {
      if (!parseU64Value(Arg.substr(10), Opts.Fuzz.Seconds))
        return false;
      SecondsSet = true;
    } else if (startsWith(Arg, "-j")) {
      if (!parseU64Value(Arg.substr(2), V) || V == 0 || V > 1024)
        return false;
      Opts.Fuzz.Threads = static_cast<unsigned>(V);
    } else if (startsWith(Arg, "--threads=")) {
      if (!parseU64Value(Arg.substr(10), V) || V == 0 || V > 1024)
        return false;
      Opts.Fuzz.Threads = static_cast<unsigned>(V);
    } else if (startsWith(Arg, "--seed=")) {
      if (!parseU64Value(Arg.substr(7), Opts.Fuzz.Seed))
        return false;
    } else if (Arg == "--no-faults") {
      Opts.Fuzz.WithFaults = false;
    } else if (startsWith(Arg, "--fault-plans=")) {
      if (!parseU64Value(Arg.substr(14), V) || V == 0 || V > 16)
        return false;
      Opts.Fuzz.FaultPlansPerProgram = static_cast<unsigned>(V);
    } else if (Arg == "--no-minimize") {
      Opts.Fuzz.Minimize = false;
    } else if (startsWith(Arg, "--repro-dir=")) {
      Opts.Fuzz.ReproDir = std::string(Arg.substr(12));
    } else if (startsWith(Arg, "--max-findings=")) {
      if (!parseU64Value(Arg.substr(15), V))
        return false;
      Opts.Fuzz.MaxFindings = static_cast<size_t>(V);
    } else if (Arg == "--taint") {
      Opts.Fuzz.Taint = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (startsWith(Arg, "--replay=")) {
      Opts.Replay = std::string(Arg.substr(9));
    } else if (Arg == "--serve") {
      Opts.Serve = true;
    } else if (startsWith(Arg, "--replay-serve=")) {
      Opts.ReplayServe = std::string(Arg.substr(15));
      Opts.Serve = true;
    } else {
      errs() << "unknown option '" << Arg << "'\n";
      return false;
    }
  }
  // A pure time budget: --seconds without --iterations means unbounded
  // iterations under the clock.
  if (SecondsSet && Opts.Fuzz.Iterations == 1000)
    Opts.Fuzz.Iterations = 0;
  if (Opts.Replay.empty() && Opts.ReplayServe.empty() &&
      Opts.Fuzz.Iterations == 0 && Opts.Fuzz.Seconds == 0) {
    errs() << "nothing to do: give --iterations and/or --seconds\n";
    return false;
  }
  return true;
}

int runReplay(const std::string &Arg, const Options &Opts) {
  uint64_t Shape = 0, Prog = 0, Fault = 0;
  unsigned Cfg = 0;
  if (!fuzz::parseReplayArg(Arg, Shape, Prog, Cfg, Fault)) {
    errs() << "malformed --replay triple '" << Arg
           << "' (expected SHAPE:PROG:CFG:FAULT with CFG < "
           << fuzz::fuzzConfigs().size() << ")\n";
    return 2;
  }
  const fuzz::FuzzConfig &FC = fuzz::fuzzConfigs()[Cfg];
  outs() << "replaying " << Arg << " (config " << FC.Name << ")\n";
  valid::OracleReport R = fuzz::replayTriple(
      Shape, Prog, Cfg, Fault, Opts.Fuzz.FaultPlansPerProgram,
      Opts.Fuzz.Taint);
  outs() << formatString(
      "speculative accesses %llu, fault plans run %u, advanced loads %u\n",
      (unsigned long long)R.SpeculativeAccesses, R.FaultPlansRun,
      R.Promotion.AdvancedLoads);
  if (R.Ok) {
    outs() << "oracle: all checks agree\n";
    return 0;
  }
  outs() << "oracle: " << valid::mismatchKindName(R.Kind) << ": " << R.Detail
         << '\n';
  if (!R.FaultContext.empty())
    outs() << "fault schedule: " << R.FaultContext << '\n';
  return 1;
}

/// --serve --replay-serve=SEED: re-derive one input and re-check it.
int runServeReplay(const std::string &Arg) {
  uint64_t Seed = 0;
  bool Hex = startsWith(Arg, "0x");
  std::string_view Digits = std::string_view(Arg).substr(Hex ? 2 : 0);
  if (Digits.empty() || Digits.size() > 16 + (Hex ? 0 : 4)) {
    errs() << "malformed --replay-serve seed '" << Arg << "'\n";
    return 2;
  }
  for (char C : Digits) {
    unsigned D;
    if (C >= '0' && C <= '9')
      D = unsigned(C - '0');
    else if (Hex && C >= 'a' && C <= 'f')
      D = unsigned(C - 'a') + 10;
    else {
      errs() << "malformed --replay-serve seed '" << Arg << "'\n";
      return 2;
    }
    Seed = Hex ? Seed * 16 + D : Seed * 10 + D;
  }
  std::string Input = fuzz::serveInputFromSeed(Seed);
  outs() << formatString("replaying serve input 0x%llx (%zu bytes)\n",
                         (unsigned long long)Seed, Input.size());
  std::string Detail;
  if (fuzz::checkServeInput(Input, Detail)) {
    outs() << "serving contract holds\n";
    return 0;
  }
  outs() << "violation: " << Detail << '\n';
  return 1;
}

/// --serve: the protocol-decoder campaign (ServeFuzzer.h).
int runServeCampaign(const Options &Opts) {
  fuzz::ServeFuzzOptions SO;
  SO.Iterations = Opts.Fuzz.Iterations ? Opts.Fuzz.Iterations : 1000;
  SO.Threads = Opts.Fuzz.Threads;
  SO.Seed = Opts.Fuzz.Seed;
  SO.Minimize = Opts.Fuzz.Minimize;
  SO.ReproDir = Opts.Fuzz.ReproDir;
  SO.MaxFindings = Opts.Fuzz.MaxFindings;
  if (!Opts.Quiet)
    SO.Log = [](const std::string &Line) { errs() << Line << '\n'; };

  fuzz::ServeFuzzResult R = fuzz::runServeFuzz(SO);
  outs() << formatString("ran %llu serve inputs\n",
                         (unsigned long long)R.Iterations);
  if (R.Findings.empty()) {
    outs() << "no findings\n";
    return 0;
  }
  outs() << formatString("%zu finding(s):\n", R.Findings.size());
  for (const fuzz::ServeFinding &F : R.Findings) {
    outs() << "  " << F.Detail << '\n';
    outs() << formatString(
        "    replay: srp-fuzz --serve --replay-serve=%s (%zu bytes)\n",
        F.replayArg().c_str(), F.Input.size());
    if (!F.ReproPath.empty())
      outs() << "    repro: " << F.ReproPath << '\n';
  }
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  Opts.Fuzz.ReproDir = "fuzz-repros";
  if (!parseArgs(Argc, Argv, Opts))
    return 2;

  if (!Opts.ReplayServe.empty())
    return runServeReplay(Opts.ReplayServe);
  if (Opts.Serve)
    return runServeCampaign(Opts);
  if (!Opts.Replay.empty())
    return runReplay(Opts.Replay, Opts);

  if (!Opts.Quiet)
    Opts.Fuzz.Log = [](const std::string &Line) {
      errs() << Line << '\n';
    };

  fuzz::FuzzResult R = fuzz::runFuzzer(Opts.Fuzz);

  outs() << formatString(
      "ran %llu programs (%llu fault-schedule simulations), "
      "%zu coverage features, %llu coverage events\n",
      (unsigned long long)R.ProgramsRun, (unsigned long long)R.FaultRuns,
      R.CoverageFeatures, (unsigned long long)R.NewCoverageEvents);

  if (R.Findings.empty()) {
    outs() << "no findings\n";
    return 0;
  }
  outs() << formatString("%zu finding(s):\n", R.Findings.size());
  for (const fuzz::Finding &F : R.Findings) {
    outs() << formatString(
        "  %s under %s: %s\n", valid::mismatchKindName(F.Kind),
        F.ConfigName.c_str(), F.Detail.c_str());
    if (!F.FaultContext.empty())
      outs() << "    fault schedule: " << F.FaultContext << '\n';
    outs() << formatString(
        "    replay: srp-fuzz --replay=%s (%u statement(s))\n",
        F.replayArg().c_str(), F.Statements);
    if (!F.ReproPath.empty())
      outs() << "    repro: " << F.ReproPath << '\n';
  }
  return 1;
}
