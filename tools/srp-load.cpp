//===- srp-load.cpp - Load generator and serving benchmark ---------------------===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a running srp-serve daemon with a deterministic mix of unique,
/// repeated, and malformed requests over N concurrent connections, and
/// verifies the serving contract as it goes:
///
///  * every repeat's result body must be byte-identical to the cold
///    response for the same canonical request (the content-addressed
///    cache promise);
///  * every malformed frame must come back as a status-2 error response
///    on a still-usable connection (the total-protocol promise).
///
/// With --json=PATH it emits BENCH_serve.json in the srp-bench/1 schema
/// (gated by tools/bench_diff.py): the deterministic counter fingerprint
/// is the sum over the unique grid's cold responses; wall_clock_us.j1_p50
/// is the cold-phase per-request p50 and jn_p50 the warm-phase p50, and a
/// "serve" section adds requests/sec, p99, and the cache hit rate
/// (DESIGN.md §8).
///
/// Exit codes: 0 all checks passed, 1 verification or connection
/// failure, 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "core/Serve.h"
#include "support/JSON.h"
#include "support/JSONReader.h"
#include "support/OStream.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace srp;

namespace {

struct Options {
  std::string Connect;
  unsigned Threads = 0;       ///< 0: hardware concurrency
  unsigned WarmRequests = 200;
  unsigned MalformedPct = 10; ///< percentage of warm requests
  uint64_t Seed = 1;
  std::string JsonPath;       ///< emit srp-bench/1 report here
  std::string Label = "serve";
  bool Shutdown = false;      ///< send a shutdown op when done
};

bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.substr(0, Prefix.size()) == Prefix;
}

bool parseUnsignedValue(std::string_view Value, uint64_t &Out) {
  if (Value.empty() || Value.size() > 12)
    return false;
  uint64_t V = 0;
  for (char C : Value) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

void usage(std::FILE *To) {
  std::fputs(
      "usage: srp-load --connect=unix:PATH|tcp:PORT [options]\n"
      "\n"
      "options:\n"
      "  --threads=N        concurrent client connections (default: hw)\n"
      "  --requests=N       warm-phase request count (default 200)\n"
      "  --malformed-pct=N  percent of warm requests sent malformed "
      "(default 10)\n"
      "  --seed=N           deterministic schedule seed (default 1)\n"
      "  --json=PATH        write an srp-bench/1 report (BENCH_serve.json)\n"
      "  --label=STR        report label (default 'serve')\n"
      "  --shutdown         ask the daemon to shut down when done\n",
      To);
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    uint64_t Value = 0;
    if (startsWith(Arg, "--connect=")) {
      Opts.Connect = std::string(Arg.substr(10));
    } else if (startsWith(Arg, "--threads=")) {
      if (!parseUnsignedValue(Arg.substr(10), Value) || Value == 0 ||
          Value > 256)
        return false;
      Opts.Threads = static_cast<unsigned>(Value);
    } else if (startsWith(Arg, "--requests=")) {
      if (!parseUnsignedValue(Arg.substr(11), Value) || Value == 0)
        return false;
      Opts.WarmRequests = static_cast<unsigned>(Value);
    } else if (startsWith(Arg, "--malformed-pct=")) {
      if (!parseUnsignedValue(Arg.substr(16), Value) || Value > 100)
        return false;
      Opts.MalformedPct = static_cast<unsigned>(Value);
    } else if (startsWith(Arg, "--seed=")) {
      if (!parseUnsignedValue(Arg.substr(7), Opts.Seed))
        return false;
    } else if (startsWith(Arg, "--json=")) {
      Opts.JsonPath = std::string(Arg.substr(7));
    } else if (startsWith(Arg, "--label=")) {
      Opts.Label = std::string(Arg.substr(8));
    } else if (Arg == "--shutdown") {
      Opts.Shutdown = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "srp-load: unknown option '%s'\n",
                   std::string(Arg).c_str());
      return false;
    }
  }
  if (Opts.Connect.empty()) {
    std::fprintf(stderr, "srp-load: --connect is required\n");
    return false;
  }
  return true;
}

/// Deterministic xorshift64 — the schedule must not depend on the
/// platform's std::mt19937 details.
struct Rng {
  uint64_t S;
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
};

/// One synchronous NDJSON connection: send a frame, read one line back.
class Connection {
public:
  bool open(const std::string &Spec, std::string &Error) {
    Fd = core::connectToServer(Spec, /*RetryMs=*/5000, Error);
    return Fd >= 0;
  }
  ~Connection() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool roundTrip(std::string Line, std::string &Response) {
    Line += '\n';
    std::string_view Data = Line;
    while (!Data.empty()) {
      ssize_t N = ::send(Fd, Data.data(), Data.size(), MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Data.remove_prefix(static_cast<size_t>(N));
    }
    return readLine(Response);
  }

private:
  bool readLine(std::string &Out) {
    for (;;) {
      size_t Newline = Buf.find('\n');
      if (Newline != std::string::npos) {
        Out = Buf.substr(0, Newline);
        Buf.erase(0, Newline + 1);
        return true;
      }
      char Chunk[16 << 10];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      if (N == 0)
        return false;
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  int Fd = -1;
  std::string Buf;
};

/// The unique-request grid: the ten standard workloads under the three
/// promotion strategies, at smoke scales. Same axes as srp-bench.
const char *const WorkloadNames[] = {"ammp",   "art",    "equake", "bzip2",
                                     "gzip",   "mcf",    "parser", "twolf",
                                     "vortex", "vpr"};
const char *const ConfigNames[] = {"conservative", "baseline", "alat"};
constexpr size_t NumUnique = std::size(WorkloadNames) * std::size(ConfigNames);

std::string uniqueRequest(size_t I) {
  const char *Workload = WorkloadNames[I % std::size(WorkloadNames)];
  const char *Config = ConfigNames[I / std::size(WorkloadNames)];
  return formatString("{\"id\":\"u%zu\",\"op\":\"run\",\"workload\":\"%s\","
                      "\"train_scale\":1,\"ref_scale\":2,"
                      "\"config\":{\"strategy\":\"%s\"}}",
                      I, Workload, Config);
}

std::string malformedRequest(uint64_t Variant) {
  switch (Variant % 6) {
  case 0:
    return "{ this is not json";
  case 1:
    return "[1,2,3]";
  case 2:
    return "{\"id\":\"m\",\"op\":\"frobnicate\"}";
  case 3:
    return "{\"id\":\"m\",\"op\":\"run\",\"workload\":\"gzip\",\"bogus\":1}";
  case 4:
    return "{\"id\":\"m\",\"op\":\"run\",\"workload\":\"gzip\","
           "\"config\":{\"strategy\":7}}";
  default:
    return "{\"id\":\"m\",\"op\":\"run\",\"workload\":\"no-such-workload\"}";
  }
}

/// The "result":... tail of a response frame — the part that must be
/// byte-identical between a cold run and its cached repeats (the id
/// matches too since repeats resend the same line; only "cached" may
/// differ, and it precedes the result).
std::string_view resultTail(std::string_view Response) {
  size_t At = Response.find("\"result\":");
  return At == std::string_view::npos ? Response : Response.substr(At);
}

int64_t statusOf(const std::string &Response) {
  JSONValue Doc;
  std::string Error;
  if (!parseJSON(Response, Doc, Error) || !Doc.isObject())
    return -1;
  const JSONValue *Result = Doc.find("result");
  if (!Result || !Result->isObject())
    return -1;
  const JSONValue *Status = Result->find("status");
  if (!Status || !Status->isNumber())
    return -1;
  return Status->isUint() ? static_cast<int64_t>(Status->asUint())
                          : Status->asInt();
}

uint64_t percentileUs(std::vector<uint64_t> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  std::sort(Sorted.begin(), Sorted.end());
  size_t Index = static_cast<size_t>(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Index, Sorted.size() - 1)];
}

struct WarmItem {
  bool Malformed;
  uint64_t Value; ///< unique index, or malformed variant
};

struct Totals {
  uint64_t Cycles = 0, Instructions = 0, RetiredLoads = 0;
  uint64_t PromotionExprs = 0, LoadsRemoved = 0, Checks = 0;
};

/// Accumulates one cold response's counters into the deterministic
/// fingerprint; false when the response shape is unexpected.
bool accumulate(const std::string &Response, Totals &T) {
  JSONValue Doc;
  std::string Error;
  if (!parseJSON(Response, Doc, Error) || !Doc.isObject())
    return false;
  const JSONValue *Result = Doc.find("result");
  if (!Result || !Result->isObject())
    return false;
  const JSONValue *Counters = Result->find("counters");
  const JSONValue *Promotion = Result->find("promotion");
  if (!Counters || !Counters->isObject() || !Promotion ||
      !Promotion->isObject())
    return false;
  auto U = [](const JSONValue *Object, const char *Key) -> uint64_t {
    const JSONValue *V = Object->find(Key);
    return V && V->isUint() ? V->asUint() : 0;
  };
  T.Cycles += U(Counters, "cycles");
  T.Instructions += U(Counters, "instructions");
  T.RetiredLoads += U(Counters, "retired_loads");
  T.PromotionExprs += U(Promotion, "exprs");
  T.LoadsRemoved += U(Promotion, "loads_removed_direct") +
                    U(Promotion, "loads_removed_indirect");
  T.Checks += U(Promotion, "checks_inserted") + U(Promotion, "cascade_checks");
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(stderr);
    return 2;
  }
  if (Opts.Threads == 0) {
    Opts.Threads = std::thread::hardware_concurrency();
    if (Opts.Threads == 0)
      Opts.Threads = 1;
  }

  using Clock = std::chrono::steady_clock;
  auto ElapsedUs = [](Clock::time_point From, Clock::time_point To) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(To - From)
            .count());
  };

  // One connection per worker, all opened up front (with retry, so the
  // daemon may still be starting).
  std::vector<Connection> Conns(Opts.Threads);
  for (Connection &C : Conns) {
    std::string Error;
    if (!C.open(Opts.Connect, Error)) {
      std::fprintf(stderr, "srp-load: %s\n", Error.c_str());
      return 1;
    }
  }

  std::atomic<uint64_t> Failures{0};
  auto Complain = [&Failures](const char *What, const std::string &Detail) {
    Failures.fetch_add(1);
    std::fprintf(stderr, "srp-load: FAIL %s: %.300s\n", What, Detail.c_str());
  };

  // -- Cold phase: every unique request exactly once ----------------------
  std::vector<std::string> ColdResponses(NumUnique);
  std::vector<uint64_t> ColdLatencies(NumUnique, 0);
  std::atomic<size_t> Next{0};
  auto ColdStart = Clock::now();
  {
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < Opts.Threads; ++T)
      Threads.emplace_back([&, T] {
        for (size_t I; (I = Next.fetch_add(1)) < NumUnique;) {
          auto Start = Clock::now();
          if (!Conns[T].roundTrip(uniqueRequest(I), ColdResponses[I])) {
            Complain("cold round-trip", uniqueRequest(I));
            return;
          }
          ColdLatencies[I] = ElapsedUs(Start, Clock::now());
          if (statusOf(ColdResponses[I]) != 0)
            Complain("cold request rejected", ColdResponses[I]);
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  uint64_t ColdWallUs = ElapsedUs(ColdStart, Clock::now());
  if (Failures.load() != 0)
    return 1;

  // -- Warm phase: deterministic repeat/malformed mix ---------------------
  std::vector<WarmItem> Schedule(Opts.WarmRequests);
  Rng R{Opts.Seed * 0x9e3779b97f4a7c15ULL + 1};
  for (WarmItem &Item : Schedule) {
    uint64_t Roll = R.next();
    Item.Malformed = Roll % 100 < Opts.MalformedPct;
    Item.Value = Item.Malformed ? R.next() : R.next() % NumUnique;
  }

  std::vector<std::vector<uint64_t>> WarmLatencies(Opts.Threads);
  Next.store(0);
  auto WarmStart = Clock::now();
  {
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < Opts.Threads; ++T)
      Threads.emplace_back([&, T] {
        std::string Response;
        for (size_t I; (I = Next.fetch_add(1)) < Schedule.size();) {
          const WarmItem &Item = Schedule[I];
          std::string Line = Item.Malformed ? malformedRequest(Item.Value)
                                            : uniqueRequest(Item.Value);
          auto Start = Clock::now();
          if (!Conns[T].roundTrip(std::move(Line), Response)) {
            Complain("warm round-trip", Response);
            return;
          }
          WarmLatencies[T].push_back(ElapsedUs(Start, Clock::now()));
          if (Item.Malformed) {
            // The documented error taxonomy: malformed input is a
            // status-2 response, never silence, never a closed socket.
            if (statusOf(Response) != 2)
              Complain("malformed request not status 2", Response);
          } else if (resultTail(Response) !=
                     resultTail(ColdResponses[Item.Value])) {
            Complain("repeat diverged from cold response", Response);
          }
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  uint64_t WarmWallUs = ElapsedUs(WarmStart, Clock::now());

  // -- Daemon-side totals -------------------------------------------------
  uint64_t CacheHits = 0, CacheMisses = 0;
  {
    std::string Response;
    if (Conns[0].roundTrip("{\"id\":\"stats\",\"op\":\"stats\"}", Response)) {
      JSONValue Doc;
      std::string Error;
      if (parseJSON(Response, Doc, Error) && Doc.isObject()) {
        if (const JSONValue *Result = Doc.find("result"))
          if (const JSONValue *Stats = Result->find("stats")) {
            if (const JSONValue *V = Stats->find("serve.cache.hits"))
              CacheHits = V->isUint() ? V->asUint() : 0;
            if (const JSONValue *V = Stats->find("serve.cache.misses"))
              CacheMisses = V->isUint() ? V->asUint() : 0;
          }
      }
    } else {
      Complain("stats round-trip", Response);
    }
  }

  Totals T;
  for (const std::string &Response : ColdResponses)
    if (!accumulate(Response, T))
      Complain("cold response shape", Response);

  if (Opts.Shutdown) {
    std::string Response;
    Conns[0].roundTrip("{\"id\":\"bye\",\"op\":\"shutdown\"}", Response);
  }

  // -- Report -------------------------------------------------------------
  std::vector<uint64_t> AllWarm;
  for (const std::vector<uint64_t> &L : WarmLatencies)
    AllWarm.insert(AllWarm.end(), L.begin(), L.end());
  uint64_t ColdP50 = percentileUs(ColdLatencies, 0.50);
  uint64_t WarmP50 = percentileUs(AllWarm, 0.50);
  uint64_t WarmP99 = percentileUs(AllWarm, 0.99);
  double Rps = WarmWallUs ? double(AllWarm.size()) * 1e6 / double(WarmWallUs)
                          : 0.0;
  double HitRate = (CacheHits + CacheMisses)
                       ? double(CacheHits) / double(CacheHits + CacheMisses)
                       : 0.0;

  std::fprintf(stderr,
               "srp-load: %zu unique in %llu us (p50 %llu us), %zu warm in "
               "%llu us (p50 %llu us, p99 %llu us, %.0f req/s), hit rate "
               "%.2f, %llu failures\n",
               NumUnique, (unsigned long long)ColdWallUs,
               (unsigned long long)ColdP50, AllWarm.size(),
               (unsigned long long)WarmWallUs, (unsigned long long)WarmP50,
               (unsigned long long)WarmP99, Rps, HitRate,
               (unsigned long long)Failures.load());

  if (!Opts.JsonPath.empty()) {
    std::FILE *File = std::fopen(Opts.JsonPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "srp-load: cannot write %s\n",
                   Opts.JsonPath.c_str());
      return 1;
    }
    FileOStream OS(File);
    JSONWriter W(OS);
    W.beginObject();
    W.key("schema").value("srp-bench/1");
    W.key("label").value(Opts.Label);
    W.key("smoke").value(true);
    W.key("repeat").value(1);
    W.key("grid");
    W.beginObject();
    W.key("pipelines").value(static_cast<uint64_t>(NumUnique));
    W.key("workloads").beginArray();
    for (const char *Name : WorkloadNames)
      W.value(Name);
    W.endArray();
    W.key("configs").beginArray();
    for (const char *Name : ConfigNames)
      W.value(Name);
    W.endArray();
    W.endObject();
    // j1_p50 = cold per-request p50 (one pipeline run each); jn_p50 =
    // warm per-request p50 (mostly cache hits) — the pair bench_diff's
    // wall gate watches, and their ratio is the serving speedup.
    W.key("wall_clock_us");
    W.beginObject();
    W.key("j1_p50").value(ColdP50);
    W.key("jn_p50").value(WarmP50);
    W.key("threads").value(static_cast<uint64_t>(Opts.Threads));
    W.endObject();
    W.key("counters");
    W.beginObject();
    W.key("sim.cycles").value(T.Cycles);
    W.key("sim.instructions").value(T.Instructions);
    W.key("sim.retired_loads").value(T.RetiredLoads);
    W.key("promotion.exprs").value(T.PromotionExprs);
    W.key("promotion.loads_removed").value(T.LoadsRemoved);
    W.key("promotion.checks").value(T.Checks);
    W.endObject();
    W.key("serve");
    W.beginObject();
    W.key("warm_requests").value(static_cast<uint64_t>(AllWarm.size()));
    W.key("malformed_pct").value(static_cast<uint64_t>(Opts.MalformedPct));
    W.key("seed").value(Opts.Seed);
    W.key("cold_wall_us").value(ColdWallUs);
    W.key("warm_wall_us").value(WarmWallUs);
    W.key("warm_rps").value(static_cast<uint64_t>(Rps));
    W.key("warm_p99_us").value(WarmP99);
    W.key("cache_hits").value(CacheHits);
    W.key("cache_misses").value(CacheMisses);
    // Per-request speedup of a warm repeat over a cold compile —
    // the acceptance bar is >= 5x.
    W.key("warm_speedup_x")
        .value(WarmP50 ? ColdP50 / std::max<uint64_t>(WarmP50, 1) : 0);
    W.endObject();
    W.endObject();
    OS << "\n";
    OS.flush();
    std::fclose(File);
  }

  return Failures.load() == 0 ? 0 : 1;
}
