//===- srp-run.cpp - Command-line driver ---------------------------------------===//
//
// Compiles a textual IR program (see ir/Parser.h for the grammar) under a
// chosen promotion strategy and runs it on the ITA simulator, reporting
// the pfmon-style counters. The run is the standard pass pipeline
// (core/Pass.h) in module mode: the parsed program is profiled and
// transformed in place, and the train run doubles as the correctness
// oracle; srp-run exits non-zero if the simulated output diverges.
//
//   srp-run [options] program.sir
//     --strategy=conservative|baseline|alat   (default alat)
//     --cascade          enable chk.a address speculation
//     --sta              enable the st.a extension (§2.5)
//     --no-profile       collect but don't feed back the alias profile
//     --disable-pass=N   skip the pass named N (repeatable; see passes)
//     --timing           per-pass wall-time breakdown (stderr)
//     --timing-json=F    write the breakdown as JSON to F (the
//                        srp-bench/1 report schema with a 1-pipeline
//                        grid, so bench_diff.py can compare runs)
//     --stats            dump the statistics registry (stderr)
//     --print-ir         print the promoted IR
//     --print-asm        print the ITA assembly
//     --alat-entries=N   ALAT geometry overrides
//     --alat-tag-bits=N
//
//   srp-run passes
//     List the registered passes in run order with descriptions.
//
//   srp-run lint [options] program.sir
//     Static speculation-safety checking (analysis/SpecVerifier.h): by
//     default the program is promoted first (same profile-feedback flow
//     as a normal run, honouring --strategy/--cascade/--sta/--no-profile
//     and --alat-entries) and the *promoted* IR is verified; with
//     --no-promote the input is linted as written, which is the mode for
//     hand-authored speculative .sir files. --Werror promotes warnings
//     (the ALAT capacity lint) to a failing exit.
//
//     --taint additionally runs the speculative secret-taint dataflow
//     (analysis/TaintFlow.h) over the linted IR; any `secret`-labelled
//     value reaching an address, branch, or output inside a speculative
//     window is a finding. --witness=<dir> emits one proof-witness JSON
//     per input (analysis/Witness.h): every promoted web's anchoring
//     invariant, alias facts, and static/dynamic taint verdict
//     (CONFIRMED/REFUTED); a REFUTED witness is a finding. Diagnostics
//     are deterministic: sorted by line, check, and context, with exact
//     duplicates dropped.
//
//     Exit status (matching srp-fuzz): 0 clean, 1 findings, 2
//     usage/parse/train errors.
//
//===----------------------------------------------------------------------===//

#include "alias/AliasAnalysis.h"
#include "analysis/SpecVerifier.h"
#include "analysis/TaintFlow.h"
#include "analysis/Witness.h"
#include "codegen/Lowering.h"
#include "core/Pass.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pre/Promoter.h"
#include "support/JSON.h"
#include "support/OStream.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>

#include <sys/stat.h>

using namespace srp;

namespace {

struct Options {
  std::string InputPath;
  pre::PromotionConfig Promotion = pre::PromotionConfig::alat();
  bool UseProfile = true;
  bool PrintIR = false;
  bool PrintAsm = false;
  bool Timing = false;
  bool Stats = false;
  std::string TimingJsonPath;
  std::string StrategyName = "alat";
  std::vector<std::string> DisabledPasses;
  arch::SimConfig Sim;
  // Lint-mode (srp-run lint ...) options.
  bool Lint = false;
  bool Promote = true;     ///< lint the promoted IR (default) or as-is
  bool WarnAsError = false;
  bool Taint = false;      ///< run the secret-taint dataflow too
  std::string WitnessDir;  ///< emit proof-witness JSON here (implies taint)
};

/// Strict decimal parse for --opt=N values. Rejects empty, non-digit,
/// and overflowing input — atoi's silent 0 turned typos into degenerate
/// ALAT geometries.
bool parseUnsignedValue(std::string_view Value, unsigned &Out) {
  if (Value.empty() || Value.size() > 9)
    return false;
  unsigned V = 0;
  for (char C : Value) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<unsigned>(C - '0');
  }
  Out = V;
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  int First = 1;
  if (Argc > 1 && std::strcmp(Argv[1], "lint") == 0) {
    Opts.Lint = true;
    First = 2;
  }
  for (int I = First; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Opts.Lint && Arg == "--no-promote")
      Opts.Promote = false;
    else if (Opts.Lint && Arg == "--Werror")
      Opts.WarnAsError = true;
    else if (Opts.Lint && Arg == "--taint")
      Opts.Taint = true;
    else if (Opts.Lint && startsWith(Arg, "--witness=")) {
      Opts.WitnessDir = Arg.substr(10);
      Opts.Taint = true;
      if (Opts.WitnessDir.empty()) {
        errs() << "empty directory in '--witness='\n";
        return false;
      }
    }
    else if (Arg == "--strategy=conservative") {
      Opts.Promotion = pre::PromotionConfig::conservative();
      Opts.StrategyName = "conservative";
    } else if (Arg == "--strategy=baseline") {
      Opts.Promotion = pre::PromotionConfig::baselineO3();
      Opts.StrategyName = "baseline";
    } else if (Arg == "--strategy=alat") {
      Opts.Promotion = pre::PromotionConfig::alat();
      Opts.StrategyName = "alat";
    }
    else if (Arg == "--cascade")
      Opts.Promotion.EnableCascade = true;
    else if (Arg == "--sta") {
      Opts.Promotion.UseStA = true;
      Opts.Sim.UseStA = true;
    } else if (Arg == "--no-profile")
      Opts.UseProfile = false;
    else if (Arg == "--print-ir")
      Opts.PrintIR = true;
    else if (Arg == "--print-asm")
      Opts.PrintAsm = true;
    else if (Arg == "--timing")
      Opts.Timing = true;
    else if (startsWith(Arg, "--timing-json=")) {
      Opts.TimingJsonPath = Arg.substr(14);
      if (Opts.TimingJsonPath.empty()) {
        errs() << "empty path in '--timing-json='\n";
        return false;
      }
    }
    else if (Arg == "--stats")
      Opts.Stats = true;
    else if (startsWith(Arg, "--disable-pass="))
      Opts.DisabledPasses.emplace_back(Arg.substr(15));
    else if (startsWith(Arg, "--alat-entries=")) {
      if (!parseUnsignedValue(Arg.substr(15), Opts.Sim.Alat.Entries)) {
        errs() << "invalid value in '" << Arg
               << "' (expected a decimal integer)\n";
        return false;
      }
    } else if (startsWith(Arg, "--alat-tag-bits=")) {
      if (!parseUnsignedValue(Arg.substr(16), Opts.Sim.Alat.PartialTagBits)) {
        errs() << "invalid value in '" << Arg
               << "' (expected a decimal integer)\n";
        return false;
      }
    } else if (!startsWith(Arg, "--") && Opts.InputPath.empty())
      Opts.InputPath = Arg;
    else {
      errs() << "unknown option '" << Arg << "'\n";
      return false;
    }
  }
  if (Opts.InputPath.empty()) {
    errs() << "usage: srp-run [options] program.sir (see file header)\n";
    return false;
  }
  // Unknown --disable-pass names would silently do nothing; reject them.
  std::vector<std::string> Known = core::standardPassNames();
  for (const std::string &Name : Opts.DisabledPasses)
    if (std::find(Known.begin(), Known.end(), Name) == Known.end()) {
      errs() << "unknown pass '" << Name
             << "' in --disable-pass (run 'srp-run passes')\n";
      return false;
    }
  return true;
}

/// srp-run passes: list the registered pipeline in run order.
int listPasses() {
  core::PassManager PM;
  core::addStandardPasses(PM);
  outs() << "registered passes, in run order:\n";
  for (const std::string &Name : PM.passNames()) {
    const core::Pass *P = PM.find(Name);
    outs() << formatString("  %-12s %s\n", Name.c_str(),
                           std::string(P->description()).c_str());
  }
  outs() << "\ndisable any of them with --disable-pass=<name> "
            "(passes depending on a disabled one fail with a "
            "diagnostic)\n";
  return 0;
}

/// Deterministic diagnostic order: line first (the file:line users read),
/// then check tag, then context. A stable sort keeps the verifier's
/// function/block order for ties; exact duplicates (every field equal)
/// are dropped afterwards.
void sortAndDedupe(std::vector<analysis::SpecDiag> &Diags) {
  auto Key = [](const analysis::SpecDiag &D) {
    return std::tie(D.Line, D.Kind, D.Severity, D.FunctionName, D.BlockName,
                    D.StmtText, D.Message);
  };
  std::stable_sort(Diags.begin(), Diags.end(),
                   [&Key](const analysis::SpecDiag &A,
                          const analysis::SpecDiag &B) {
                     return Key(A) < Key(B);
                   });
  Diags.erase(std::unique(Diags.begin(), Diags.end(),
                          [&Key](const analysis::SpecDiag &A,
                                 const analysis::SpecDiag &B) {
                            return Key(A) == Key(B);
                          }),
              Diags.end());
}

void sortAndDedupe(std::vector<analysis::TaintDiag> &Diags) {
  auto Key = [](const analysis::TaintDiag &D) {
    return std::tie(D.Line, D.Kind, D.FunctionName, D.BlockName, D.StmtText,
                    D.SpecMask, D.Message);
  };
  std::stable_sort(Diags.begin(), Diags.end(),
                   [&Key](const analysis::TaintDiag &A,
                          const analysis::TaintDiag &B) {
                     return Key(A) < Key(B);
                   });
  Diags.erase(std::unique(Diags.begin(), Diags.end(),
                          [&Key](const analysis::TaintDiag &A,
                                 const analysis::TaintDiag &B) {
                            return Key(A) == Key(B);
                          }),
              Diags.end());
}

/// "dir/taint_leak.sir" -> "taint_leak" (for witness file naming).
std::string inputStem(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base = Slash == std::string::npos ? Path
                                                : Path.substr(Slash + 1);
  size_t Dot = Base.find_last_of('.');
  if (Dot != std::string::npos && Dot > 0)
    Base = Base.substr(0, Dot);
  return Base.empty() ? std::string("module") : Base;
}

/// srp-run lint: static speculation-safety checking. Returns the process
/// exit code. \p M is already parsed and verified.
int runLint(ir::Module &M, const Options &Opts) {
  // The same Steensgaard result serves the promoter and the verifier
  // (promotion introduces no new memory objects, so the pre-promotion
  // points-to solution stays valid for the promoted IR).
  alias::SteensgaardAnalysis AA(M);

  if (Opts.Promote) {
    interp::AliasProfile AP;
    interp::EdgeProfile EP;
    interp::Interpreter Train(M);
    Train.setAliasProfile(&AP);
    Train.setEdgeProfile(&EP);
    interp::RunResult Train_ = Train.run();
    if (!Train_.Ok) {
      errs() << "train run failed: " << Train_.Error << '\n';
      return 2;
    }
    pre::promoteModule(M, AA, Opts.UseProfile ? &AP : nullptr, &EP,
                       Opts.Promotion);
  }
  if (Opts.PrintIR) {
    outs() << "--- linted IR ---\n";
    ir::printModule(M, outs());
  }

  analysis::SpecVerifyConfig SVC;
  SVC.AlatEntries = Opts.Sim.Alat.Entries;
  SVC.AA = &AA;
  std::vector<analysis::SpecDiag> Diags = analysis::verifySpeculation(M, SVC);
  sortAndDedupe(Diags);

  unsigned NumErrors = 0, NumWarnings = 0;
  for (const analysis::SpecDiag &D : Diags) {
    if (D.Severity == analysis::SpecDiagSeverity::Error)
      ++NumErrors;
    else
      ++NumWarnings;
    errs() << analysis::formatSpecDiag(D, Opts.InputPath) << '\n';
  }

  // --taint / --witness: the secret-taint dataflow over the linted IR,
  // cross-validated against the interpreter's shadow run for witnesses.
  unsigned NumRefuted = 0;
  if (Opts.Taint) {
    analysis::TaintFlowConfig TFC;
    TFC.AA = &AA;
    analysis::TaintFlow TF(M, TFC);
    std::vector<analysis::TaintDiag> TDiags = TF.diags();
    sortAndDedupe(TDiags);
    NumErrors += static_cast<unsigned>(TDiags.size());
    for (const analysis::TaintDiag &D : TDiags)
      errs() << analysis::formatTaintDiag(D, Opts.InputPath) << '\n';

    if (!Opts.WitnessDir.empty()) {
      // Dynamic side of the cross-check: shadow-taint interpretation of
      // the same IR. A trapping or main-less program simply contributes
      // no dynamic observations.
      interp::TaintTrace Dyn;
      bool HaveDyn = false;
      if (TF.hasSecrets() && M.findFunction("main")) {
        interp::Interpreter I(M);
        I.setTaintTrace(&Dyn);
        HaveDyn = I.run().Ok;
      }
      std::vector<analysis::Witness> Ws = analysis::buildWitnesses(
          M, TF, Diags, HaveDyn ? &Dyn : nullptr);
      for (const analysis::Witness &W : Ws)
        if (W.St == analysis::Witness::Status::Refuted)
          ++NumRefuted;
      ::mkdir(Opts.WitnessDir.c_str(), 0755); // existing dir is fine
      std::string Path =
          Opts.WitnessDir + "/" + inputStem(Opts.InputPath) + ".witness.json";
      std::FILE *File = std::fopen(Path.c_str(), "wb");
      if (!File) {
        errs() << "cannot write '" << Path << "'\n";
        return 2;
      }
      FileOStream OS(File);
      analysis::writeWitnesses(Ws, M, TF, OS);
      OS.flush();
      std::fclose(File);
      errs() << formatString("%s: wrote %zu witness(es), %u refuted\n",
                             Path.c_str(), Ws.size(), NumRefuted);
      NumErrors += NumRefuted;
    }
  }

  errs() << formatString("%s: %u error(s), %u warning(s)\n",
                         Opts.InputPath.c_str(), NumErrors, NumWarnings);
  if (NumErrors > 0 || (Opts.WarnAsError && NumWarnings > 0))
    return 1;
  return 0;
}

/// --timing-json: one pipeline reported in the srp-bench/1 schema (see
/// DESIGN.md §7), so tools/bench_diff.py can diff an srp-run invocation
/// against another run or a recorded baseline. The grid is a single
/// workload (the input file) under a single config (the strategy), the
/// wall-clock medians are the one measured pipeline wall time, and each
/// pass's p50 is its single sample.
bool writeTimingJson(const Options &Opts, const core::PipelineState &S,
                     uint64_t WallUs, const StatsRegistry &SR) {
  std::FILE *File = std::fopen(Opts.TimingJsonPath.c_str(), "wb");
  if (!File) {
    errs() << "cannot write '" << Opts.TimingJsonPath << "'\n";
    return false;
  }
  FileOStream OS(File);
  JSONWriter W(OS);
  W.beginObject();
  W.key("schema").value("srp-bench/1");
  W.key("label").value("srp-run");
  W.key("smoke").value(false);
  W.key("repeat").value(1);
  W.key("grid");
  {
    W.beginObject();
    W.key("pipelines").value(uint64_t(1));
    W.key("workloads").beginArray().value(inputStem(Opts.InputPath)).endArray();
    W.key("configs").beginArray().value(Opts.StrategyName).endArray();
    W.endObject();
  }
  W.key("wall_clock_us");
  {
    W.beginObject();
    W.key("j1_p50").value(WallUs);
    W.key("jn_p50").value(WallUs);
    W.key("threads").value(1);
    W.endObject();
  }
  W.key("passes");
  {
    W.beginObject();
    for (const core::PipelineResult::PassTiming &T : S.Result.Timings) {
      W.key(T.Name);
      W.beginObject();
      W.key("p50_us").value(T.Micros);
      W.key("total_us").value(T.Micros);
      W.endObject();
    }
    W.endObject();
  }
  W.key("counters");
  {
    const arch::PerfCounters &C = S.Result.Sim.Counters;
    const pre::PromotionStats &P = S.Result.Promotion;
    W.beginObject();
    W.key("sim.cycles").value(C.Cycles);
    W.key("sim.instructions").value(C.Instructions);
    W.key("sim.retired_loads").value(C.RetiredLoads);
    W.key("promotion.exprs").value(P.PromotedExprs);
    W.key("promotion.loads_removed").value(P.loadsRemoved());
    W.key("promotion.checks").value(P.ChecksInserted + P.CascadeChecks);
    W.endObject();
  }
  W.key("stats");
  {
    W.beginObject();
    for (const char *Key :
         {"analysis.cache.hits", "analysis.cache.misses",
          "analysis.cache.invalidations", "alloc.arena.bytes",
          "alloc.arena.slabs", "alloc.arena.resets"})
      W.key(Key).value(SR.value(Key));
    W.endObject();
  }
  W.endObject();
  OS << "\n";
  OS.flush();
  std::fclose(File);
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  char Buffer[4096];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Out.append(Buffer, N);
  std::fclose(File);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1 && std::strcmp(Argv[1], "passes") == 0)
    return listPasses();

  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;

  std::string Text;
  if (!readFile(Opts.InputPath, Text)) {
    errs() << "cannot read '" << Opts.InputPath << "'\n";
    return 2;
  }
  ir::Module M;
  std::string Error;
  if (!ir::parseModule(Text, M, Error)) {
    errs() << Opts.InputPath << ": " << Error << '\n';
    return 2;
  }
  std::vector<std::string> Errors = ir::verifyModule(M);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      errs() << Opts.InputPath << ": " << E << '\n';
    return 2;
  }

  if (Opts.Lint)
    return runLint(M, Opts);

  // The standard pipeline in module mode: M is profiled (the train run,
  // which doubles as the oracle) and promoted in place.
  core::PipelineState S;
  S.External = &M;
  S.Config.Promotion = Opts.Promotion;
  S.Config.Sim = Opts.Sim;
  S.Config.UseAliasProfile = Opts.UseProfile;
  S.Config.DisabledPasses = Opts.DisabledPasses;

  core::PassManager PM;
  core::addStandardPasses(PM);
  auto AfterPass = [&Opts, &M](const core::Pass &P,
                               core::PipelineState &St) {
    if (Opts.PrintIR && P.name() == "promote") {
      outs() << "--- promoted IR ---\n";
      ir::printModule(M, outs());
    }
    // After regalloc rather than lower, so physical registers show.
    if (Opts.PrintAsm && P.name() == "regalloc") {
      outs() << "--- ITA assembly ---\n";
      codegen::printMModule(*St.MM, outs());
    }
  };
  // The run's stats epoch: --stats and --timing-json describe this
  // pipeline, not everything the process recorded since startup (the
  // registry is cumulative and a long-lived embedder may have run many
  // pipelines before this one). The capture merges into the global
  // registry when it dies, so process totals still add up.
  ScopedStatsCapture Capture;
  uint64_t WallUs = 0;
  bool Ok;
  {
    ScopedTimer Wall(WallUs);
    Ok = PM.run(S, AfterPass);
  }

  auto ReportObservability = [&Opts, &S, &M, WallUs, &Capture] {
    // Live arenas haven't published yet (stats normally post at arena
    // teardown); flush so the report and JSON see real totals.
    if (Opts.Stats || !Opts.TimingJsonPath.empty()) {
      M.arena().flushStats();
      if (S.MM)
        S.MM->arena().flushStats();
    }
    if (!Opts.TimingJsonPath.empty())
      writeTimingJson(Opts, S, WallUs, Capture.captured());
    if (Opts.Timing) {
      errs() << "--- pass timing (us) ---\n";
      for (const core::PipelineResult::PassTiming &T : S.Result.Timings)
        errs() << formatString("  %10llu  %s\n",
                               (unsigned long long)T.Micros,
                               T.Name.c_str());
    }
    if (Opts.Stats) {
      errs() << "--- stats ---\n";
      Capture.captured().report(errs());
    }
  };

  if (!Ok) {
    errs() << S.Result.Error << '\n';
    ReportObservability();
    return 1;
  }

  for (const std::string &Line : S.Result.Output)
    outs() << Line << '\n';
  if (S.HasProfile && S.Result.Output != S.OracleOutput) {
    errs() << "MISCOMPILE: simulated output diverges from the "
              "interpreter\n";
    return 1;
  }

  const arch::PerfCounters &C = S.Result.Sim.Counters;
  errs() << "---\n";
  errs() << formatString(
      "cycles %llu, instructions %llu, loads %llu, stores %llu\n",
      (unsigned long long)C.Cycles, (unsigned long long)C.Instructions,
      (unsigned long long)C.RetiredLoads,
      (unsigned long long)C.RetiredStores);
  errs() << formatString(
      "data-access stall cycles %llu, taken branches %llu, RSE cycles "
      "%llu\n",
      (unsigned long long)C.DataAccessCycles,
      (unsigned long long)C.TakenBranches,
      (unsigned long long)C.RseCycles);
  errs() << formatString(
      "ALAT checks %llu (failed %llu), chk.a recoveries %llu\n",
      (unsigned long long)C.AlatChecks,
      (unsigned long long)C.AlatCheckFailures,
      (unsigned long long)C.ChkARecoveries);
  const pre::PromotionStats &Stats = S.Result.Promotion;
  errs() << formatString(
      "promotion: %u exprs, %u loads removed (%u direct / %u indirect), "
      "%u checks, %u software pairs\n",
      Stats.PromotedExprs, Stats.loadsRemoved(), Stats.LoadsRemovedDirect,
      Stats.LoadsRemovedIndirect,
      Stats.ChecksInserted + Stats.CascadeChecks, Stats.SoftwareChecks);
  ReportObservability();
  return 0;
}
