//===- srp-bench.cpp - Pipeline performance baseline recorder -----------------===//
//
// Measures the compiler+simulator pipeline over a pinned workload grid and
// emits a machine-readable BENCH_pipeline.json. The grid is fixed — the
// ten standard workloads under the paper's three promotion strategies —
// so successive runs of this tool are comparable; tools/bench_diff.py
// compares two reports and the bench-regress CI job fails on regressions
// against the checked-in baseline.
//
//   srp-bench [options]
//     --out=FILE     write the JSON report to FILE (default stdout)
//     --smoke        train/ref scale 1 (the CI-fast grid)
//     --repeat=K     grid repetitions; wall-clock numbers are p50 over K
//                    (default 5)
//     -jN            thread count for the parallel wall-clock axis
//                    (default: hardware concurrency)
//     --label=STR    free-form label recorded in the report
//
// Report schema (srp-bench/1): see DESIGN.md §7. Every field is either a
// deterministic counter (byte-identical across runs and -j values: the
// simulated cycles fingerprint, promotion totals, cache/allocation
// counters) or an explicitly nondeterministic wall-clock measurement
// (p50 across --repeat grid runs).
//
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "support/Error.h"
#include "support/JSON.h"
#include "support/OStream.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace srp;

namespace {

struct Options {
  std::string OutPath;
  std::string Label = "baseline";
  bool Smoke = false;
  unsigned Repeat = 5;
  unsigned Threads = 0; ///< 0: hardware concurrency
};

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (startsWith(Arg, "--out="))
      Opts.OutPath = Arg.substr(6);
    else if (Arg == "--smoke")
      Opts.Smoke = true;
    else if (startsWith(Arg, "--repeat="))
      Opts.Repeat = static_cast<unsigned>(
          std::max(1, std::atoi(Arg.data() + 9)));
    else if (startsWith(Arg, "--label="))
      Opts.Label = Arg.substr(8);
    else if (startsWith(Arg, "-j") && Arg.size() > 2)
      Opts.Threads = static_cast<unsigned>(
          std::max(1, std::atoi(Arg.data() + 2)));
    else {
      errs() << "unknown option '" << Arg
             << "' (supported: --out= --smoke --repeat= --label= -jN)\n";
      return false;
    }
  }
  if (Opts.Threads == 0) {
    Opts.Threads = std::thread::hardware_concurrency();
    if (Opts.Threads == 0)
      Opts.Threads = 1;
  }
  return true;
}

/// The pinned grid: every standard workload under the paper's three
/// strategies. Changing this invalidates baseline comparability, so
/// bench_diff.py cross-checks the recorded grid description.
std::vector<core::Experiment>
buildGrid(const std::vector<core::Workload> &Ws,
          const std::vector<std::pair<std::string, core::PipelineConfig>>
              &Configs) {
  std::vector<core::Experiment> Exps;
  Exps.reserve(Ws.size() * Configs.size());
  for (const core::Workload &W : Ws)
    for (const auto &[Name, C] : Configs)
      Exps.push_back({&W, C, W.Name + "/" + Name});
  return Exps;
}

uint64_t p50(std::vector<uint64_t> V) {
  std::sort(V.begin(), V.end());
  return V.empty() ? 0 : V[V.size() / 2];
}

struct GridMeasurement {
  std::vector<uint64_t> WallJ1, WallJN;
  /// Per-pass wall-time samples pooled over every pipeline of every
  /// repeat (p50 is per pipeline-run, not per grid).
  std::map<std::string, std::vector<uint64_t>> PassSamples;
  std::map<std::string, uint64_t> PassTotals;
  // Deterministic fingerprint, from the final run.
  uint64_t Cycles = 0, Instructions = 0, RetiredLoads = 0;
  uint64_t PromotedExprs = 0, LoadsRemoved = 0, Checks = 0;
  size_t Pipelines = 0;
};

void accumulate(const std::vector<core::PipelineResult> &Results,
                GridMeasurement &G) {
  for (const core::PipelineResult &R : Results) {
    if (!R.Ok)
      fatalError("pipeline failed: " + R.Error);
    for (const core::PipelineResult::PassTiming &T : R.Timings) {
      G.PassSamples[T.Name].push_back(T.Micros);
      G.PassTotals[T.Name] += T.Micros;
    }
  }
}

void fingerprint(const std::vector<core::PipelineResult> &Results,
                 GridMeasurement &G) {
  G.Cycles = G.Instructions = G.RetiredLoads = 0;
  G.PromotedExprs = G.LoadsRemoved = G.Checks = 0;
  for (const core::PipelineResult &R : Results) {
    G.Cycles += R.Sim.Counters.Cycles;
    G.Instructions += R.Sim.Counters.Instructions;
    G.RetiredLoads += R.Sim.Counters.RetiredLoads;
    G.PromotedExprs += R.Promotion.PromotedExprs;
    G.LoadsRemoved += R.Promotion.loadsRemoved();
    G.Checks += R.Promotion.ChecksInserted + R.Promotion.CascadeChecks;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;

  std::vector<core::Workload> Ws = workloads::standardWorkloads();
  if (Opts.Smoke)
    for (core::Workload &W : Ws) {
      W.TrainScale = 1;
      W.RefScale = 1;
    }
  std::vector<std::pair<std::string, core::PipelineConfig>> Configs = {
      {"conservative",
       core::configFor(pre::PromotionConfig::conservative())},
      {"baseline", core::configFor(pre::PromotionConfig::baselineO3())},
      {"alat", core::configFor(pre::PromotionConfig::alat())},
  };
  std::vector<core::Experiment> Exps = buildGrid(Ws, Configs);

  StatsRegistry::get().clear();
  GridMeasurement G;
  G.Pipelines = Exps.size();
  std::vector<core::PipelineResult> Last;
  for (unsigned R = 0; R < Opts.Repeat; ++R) {
    core::ExperimentOptions Serial;
    Serial.Threads = 1;
    uint64_t Us = 0;
    {
      ScopedTimer T(Us);
      Last = core::runExperiments(Exps, Serial);
    }
    G.WallJ1.push_back(Us);
    accumulate(Last, G);

    core::ExperimentOptions Parallel;
    Parallel.Threads = Opts.Threads;
    Us = 0;
    {
      ScopedTimer T(Us);
      Last = core::runExperiments(Exps, Parallel);
    }
    G.WallJN.push_back(Us);
    accumulate(Last, G);
  }
  fingerprint(Last, G);

  std::FILE *File = stdout;
  if (!Opts.OutPath.empty()) {
    File = std::fopen(Opts.OutPath.c_str(), "wb");
    if (!File) {
      errs() << "cannot write '" << Opts.OutPath << "'\n";
      return 2;
    }
  }
  FileOStream OS(File);
  JSONWriter W(OS);
  W.beginObject();
  W.key("schema").value("srp-bench/1");
  W.key("label").value(Opts.Label);
  W.key("smoke").value(Opts.Smoke);
  W.key("repeat").value(Opts.Repeat);
  W.key("grid");
  {
    W.beginObject();
    W.key("pipelines").value(static_cast<uint64_t>(G.Pipelines));
    W.key("workloads").beginArray();
    for (const core::Workload &Wk : Ws)
      W.value(Wk.Name);
    W.endArray();
    W.key("configs").beginArray();
    for (const auto &[Name, C] : Configs)
      W.value(Name);
    W.endArray();
    W.endObject();
  }
  W.key("wall_clock_us");
  {
    W.beginObject();
    W.key("j1_p50").value(p50(G.WallJ1));
    W.key("jn_p50").value(p50(G.WallJN));
    W.key("threads").value(Opts.Threads);
    W.endObject();
  }
  W.key("passes");
  {
    W.beginObject();
    for (auto &[Name, Samples] : G.PassSamples) {
      W.key(Name);
      W.beginObject();
      W.key("p50_us").value(p50(Samples));
      W.key("total_us").value(G.PassTotals[Name]);
      W.endObject();
    }
    W.endObject();
  }
  W.key("counters");
  {
    // Deterministic by construction: identical for every -j and repeat.
    W.beginObject();
    W.key("sim.cycles").value(G.Cycles);
    W.key("sim.instructions").value(G.Instructions);
    W.key("sim.retired_loads").value(G.RetiredLoads);
    W.key("promotion.exprs").value(G.PromotedExprs);
    W.key("promotion.loads_removed").value(G.LoadsRemoved);
    W.key("promotion.checks").value(G.Checks);
    W.endObject();
  }
  W.key("stats");
  {
    // Process-wide registry slice: cache effectiveness and allocation
    // counters (zero when a build predates the counter).
    StatsRegistry &SR = StatsRegistry::get();
    W.beginObject();
    for (const char *Key :
         {"analysis.cache.hits", "analysis.cache.misses",
          "analysis.cache.invalidations", "alloc.arena.bytes",
          "alloc.arena.slabs", "alloc.arena.resets"})
      W.key(Key).value(SR.value(Key));
    W.endObject();
  }
  W.endObject();
  OS << "\n";
  OS.flush();
  if (File != stdout)
    std::fclose(File);
  return 0;
}
