# Empty dependencies file for srp-run.
# This may be replaced when dependencies are built.
