file(REMOVE_RECURSE
  "CMakeFiles/srp-run.dir/srp-run.cpp.o"
  "CMakeFiles/srp-run.dir/srp-run.cpp.o.d"
  "srp-run"
  "srp-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
