# Empty dependencies file for loop_invariant.
# This may be replaced when dependencies are built.
