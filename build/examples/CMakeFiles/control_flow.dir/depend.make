# Empty dependencies file for control_flow.
# This may be replaced when dependencies are built.
