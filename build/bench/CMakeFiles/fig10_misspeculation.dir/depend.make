# Empty dependencies file for fig10_misspeculation.
# This may be replaced when dependencies are built.
