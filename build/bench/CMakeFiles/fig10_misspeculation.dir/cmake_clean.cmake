file(REMOVE_RECURSE
  "CMakeFiles/fig10_misspeculation.dir/fig10_misspeculation.cpp.o"
  "CMakeFiles/fig10_misspeculation.dir/fig10_misspeculation.cpp.o.d"
  "fig10_misspeculation"
  "fig10_misspeculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_misspeculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
