# Empty compiler generated dependencies file for micro_alat.
# This may be replaced when dependencies are built.
