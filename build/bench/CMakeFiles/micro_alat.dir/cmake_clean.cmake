file(REMOVE_RECURSE
  "CMakeFiles/micro_alat.dir/micro_alat.cpp.o"
  "CMakeFiles/micro_alat.dir/micro_alat.cpp.o.d"
  "micro_alat"
  "micro_alat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_alat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
