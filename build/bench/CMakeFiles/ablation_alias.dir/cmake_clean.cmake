file(REMOVE_RECURSE
  "CMakeFiles/ablation_alias.dir/ablation_alias.cpp.o"
  "CMakeFiles/ablation_alias.dir/ablation_alias.cpp.o.d"
  "ablation_alias"
  "ablation_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
