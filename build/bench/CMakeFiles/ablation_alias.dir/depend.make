# Empty dependencies file for ablation_alias.
# This may be replaced when dependencies are built.
