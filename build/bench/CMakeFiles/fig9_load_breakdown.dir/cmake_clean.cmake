file(REMOVE_RECURSE
  "CMakeFiles/fig9_load_breakdown.dir/fig9_load_breakdown.cpp.o"
  "CMakeFiles/fig9_load_breakdown.dir/fig9_load_breakdown.cpp.o.d"
  "fig9_load_breakdown"
  "fig9_load_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_load_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
