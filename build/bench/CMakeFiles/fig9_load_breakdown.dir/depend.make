# Empty dependencies file for fig9_load_breakdown.
# This may be replaced when dependencies are built.
