# Empty compiler generated dependencies file for ablation_sta.
# This may be replaced when dependencies are built.
