file(REMOVE_RECURSE
  "CMakeFiles/ablation_sta.dir/ablation_sta.cpp.o"
  "CMakeFiles/ablation_sta.dir/ablation_sta.cpp.o.d"
  "ablation_sta"
  "ablation_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
