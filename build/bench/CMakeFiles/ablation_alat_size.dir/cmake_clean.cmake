file(REMOVE_RECURSE
  "CMakeFiles/ablation_alat_size.dir/ablation_alat_size.cpp.o"
  "CMakeFiles/ablation_alat_size.dir/ablation_alat_size.cpp.o.d"
  "ablation_alat_size"
  "ablation_alat_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alat_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
