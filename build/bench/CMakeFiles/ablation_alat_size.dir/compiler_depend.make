# Empty compiler generated dependencies file for ablation_alat_size.
# This may be replaced when dependencies are built.
