file(REMOVE_RECURSE
  "CMakeFiles/fig11_rse.dir/fig11_rse.cpp.o"
  "CMakeFiles/fig11_rse.dir/fig11_rse.cpp.o.d"
  "fig11_rse"
  "fig11_rse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
