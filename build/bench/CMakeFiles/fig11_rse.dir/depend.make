# Empty dependencies file for fig11_rse.
# This may be replaced when dependencies are built.
