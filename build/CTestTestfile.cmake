# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/support")
subdirs("src/ir")
subdirs("src/alias")
subdirs("src/interp")
subdirs("src/ssa")
subdirs("src/pre")
subdirs("src/codegen")
subdirs("src/arch")
subdirs("src/core")
subdirs("src/workloads")
subdirs("tools")
subdirs("tests")
subdirs("bench")
subdirs("examples")
