# Empty dependencies file for srp_codegen.
# This may be replaced when dependencies are built.
