file(REMOVE_RECURSE
  "libsrp_codegen.a"
)
