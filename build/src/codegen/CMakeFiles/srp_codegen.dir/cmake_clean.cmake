file(REMOVE_RECURSE
  "CMakeFiles/srp_codegen.dir/Lowering.cpp.o"
  "CMakeFiles/srp_codegen.dir/Lowering.cpp.o.d"
  "CMakeFiles/srp_codegen.dir/MIR.cpp.o"
  "CMakeFiles/srp_codegen.dir/MIR.cpp.o.d"
  "CMakeFiles/srp_codegen.dir/RegAlloc.cpp.o"
  "CMakeFiles/srp_codegen.dir/RegAlloc.cpp.o.d"
  "libsrp_codegen.a"
  "libsrp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
