file(REMOVE_RECURSE
  "libsrp_ir.a"
)
