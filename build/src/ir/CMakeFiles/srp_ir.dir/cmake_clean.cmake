file(REMOVE_RECURSE
  "CMakeFiles/srp_ir.dir/CFG.cpp.o"
  "CMakeFiles/srp_ir.dir/CFG.cpp.o.d"
  "CMakeFiles/srp_ir.dir/Parser.cpp.o"
  "CMakeFiles/srp_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/srp_ir.dir/Printer.cpp.o"
  "CMakeFiles/srp_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/srp_ir.dir/Type.cpp.o"
  "CMakeFiles/srp_ir.dir/Type.cpp.o.d"
  "CMakeFiles/srp_ir.dir/Verifier.cpp.o"
  "CMakeFiles/srp_ir.dir/Verifier.cpp.o.d"
  "libsrp_ir.a"
  "libsrp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
