file(REMOVE_RECURSE
  "CMakeFiles/srp_ssa.dir/Dominators.cpp.o"
  "CMakeFiles/srp_ssa.dir/Dominators.cpp.o.d"
  "CMakeFiles/srp_ssa.dir/HSSA.cpp.o"
  "CMakeFiles/srp_ssa.dir/HSSA.cpp.o.d"
  "libsrp_ssa.a"
  "libsrp_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
