file(REMOVE_RECURSE
  "CMakeFiles/srp_workloads.dir/FpWorkloads.cpp.o"
  "CMakeFiles/srp_workloads.dir/FpWorkloads.cpp.o.d"
  "CMakeFiles/srp_workloads.dir/IntWorkloads.cpp.o"
  "CMakeFiles/srp_workloads.dir/IntWorkloads.cpp.o.d"
  "libsrp_workloads.a"
  "libsrp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
