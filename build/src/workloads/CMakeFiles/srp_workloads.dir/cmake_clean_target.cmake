file(REMOVE_RECURSE
  "libsrp_workloads.a"
)
