# Empty dependencies file for srp_workloads.
# This may be replaced when dependencies are built.
