file(REMOVE_RECURSE
  "libsrp_arch.a"
)
