file(REMOVE_RECURSE
  "CMakeFiles/srp_arch.dir/Alat.cpp.o"
  "CMakeFiles/srp_arch.dir/Alat.cpp.o.d"
  "CMakeFiles/srp_arch.dir/Caches.cpp.o"
  "CMakeFiles/srp_arch.dir/Caches.cpp.o.d"
  "CMakeFiles/srp_arch.dir/Simulator.cpp.o"
  "CMakeFiles/srp_arch.dir/Simulator.cpp.o.d"
  "libsrp_arch.a"
  "libsrp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
