# Empty compiler generated dependencies file for srp_arch.
# This may be replaced when dependencies are built.
