file(REMOVE_RECURSE
  "CMakeFiles/srp_core.dir/Pipeline.cpp.o"
  "CMakeFiles/srp_core.dir/Pipeline.cpp.o.d"
  "libsrp_core.a"
  "libsrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
