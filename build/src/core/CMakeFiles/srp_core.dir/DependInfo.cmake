
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Pipeline.cpp" "src/core/CMakeFiles/srp_core.dir/Pipeline.cpp.o" "gcc" "src/core/CMakeFiles/srp_core.dir/Pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/srp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/pre/CMakeFiles/srp_pre.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/srp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/srp_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/srp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/alias/CMakeFiles/srp_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/srp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/srp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
