file(REMOVE_RECURSE
  "CMakeFiles/srp_support.dir/Error.cpp.o"
  "CMakeFiles/srp_support.dir/Error.cpp.o.d"
  "CMakeFiles/srp_support.dir/OStream.cpp.o"
  "CMakeFiles/srp_support.dir/OStream.cpp.o.d"
  "CMakeFiles/srp_support.dir/StringUtils.cpp.o"
  "CMakeFiles/srp_support.dir/StringUtils.cpp.o.d"
  "libsrp_support.a"
  "libsrp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
