# Empty dependencies file for srp_support.
# This may be replaced when dependencies are built.
