file(REMOVE_RECURSE
  "libsrp_support.a"
)
