file(REMOVE_RECURSE
  "libsrp_pre.a"
)
