file(REMOVE_RECURSE
  "CMakeFiles/srp_pre.dir/CopyProp.cpp.o"
  "CMakeFiles/srp_pre.dir/CopyProp.cpp.o.d"
  "CMakeFiles/srp_pre.dir/Promoter.cpp.o"
  "CMakeFiles/srp_pre.dir/Promoter.cpp.o.d"
  "libsrp_pre.a"
  "libsrp_pre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_pre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
