# Empty dependencies file for srp_pre.
# This may be replaced when dependencies are built.
