# Empty compiler generated dependencies file for srp_interp.
# This may be replaced when dependencies are built.
