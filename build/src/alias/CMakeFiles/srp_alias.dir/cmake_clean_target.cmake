file(REMOVE_RECURSE
  "libsrp_alias.a"
)
