# Empty dependencies file for srp_alias.
# This may be replaced when dependencies are built.
