file(REMOVE_RECURSE
  "CMakeFiles/srp_alias.dir/AliasAnalysis.cpp.o"
  "CMakeFiles/srp_alias.dir/AliasAnalysis.cpp.o.d"
  "CMakeFiles/srp_alias.dir/Andersen.cpp.o"
  "CMakeFiles/srp_alias.dir/Andersen.cpp.o.d"
  "libsrp_alias.a"
  "libsrp_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
