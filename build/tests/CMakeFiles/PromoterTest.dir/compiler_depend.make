# Empty compiler generated dependencies file for PromoterTest.
# This may be replaced when dependencies are built.
