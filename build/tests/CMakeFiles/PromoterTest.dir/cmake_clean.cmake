file(REMOVE_RECURSE
  "CMakeFiles/PromoterTest.dir/PromoterTest.cpp.o"
  "CMakeFiles/PromoterTest.dir/PromoterTest.cpp.o.d"
  "PromoterTest"
  "PromoterTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PromoterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
