# Empty dependencies file for IRTest.
# This may be replaced when dependencies are built.
