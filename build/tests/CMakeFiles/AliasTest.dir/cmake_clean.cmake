file(REMOVE_RECURSE
  "AliasTest"
  "AliasTest.pdb"
  "CMakeFiles/AliasTest.dir/AliasTest.cpp.o"
  "CMakeFiles/AliasTest.dir/AliasTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AliasTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
