# Empty compiler generated dependencies file for AliasTest.
# This may be replaced when dependencies are built.
