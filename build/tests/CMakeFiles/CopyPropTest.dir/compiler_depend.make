# Empty compiler generated dependencies file for CopyPropTest.
# This may be replaced when dependencies are built.
