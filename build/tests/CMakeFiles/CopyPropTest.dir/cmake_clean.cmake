file(REMOVE_RECURSE
  "CMakeFiles/CopyPropTest.dir/CopyPropTest.cpp.o"
  "CMakeFiles/CopyPropTest.dir/CopyPropTest.cpp.o.d"
  "CopyPropTest"
  "CopyPropTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CopyPropTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
