# Empty compiler generated dependencies file for AndersenTest.
# This may be replaced when dependencies are built.
