file(REMOVE_RECURSE
  "AndersenTest"
  "AndersenTest.pdb"
  "CMakeFiles/AndersenTest.dir/AndersenTest.cpp.o"
  "CMakeFiles/AndersenTest.dir/AndersenTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AndersenTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
