file(REMOVE_RECURSE
  "CMakeFiles/SSATest.dir/SSATest.cpp.o"
  "CMakeFiles/SSATest.dir/SSATest.cpp.o.d"
  "SSATest"
  "SSATest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SSATest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
