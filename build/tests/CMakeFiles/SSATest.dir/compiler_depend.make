# Empty compiler generated dependencies file for SSATest.
# This may be replaced when dependencies are built.
