file(REMOVE_RECURSE
  "CMakeFiles/MIRTest.dir/MIRTest.cpp.o"
  "CMakeFiles/MIRTest.dir/MIRTest.cpp.o.d"
  "MIRTest"
  "MIRTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MIRTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
