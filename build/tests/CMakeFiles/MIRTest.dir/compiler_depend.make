# Empty compiler generated dependencies file for MIRTest.
# This may be replaced when dependencies are built.
