# Empty dependencies file for SimulatorTest.
# This may be replaced when dependencies are built.
