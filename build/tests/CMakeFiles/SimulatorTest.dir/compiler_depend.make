# Empty compiler generated dependencies file for SimulatorTest.
# This may be replaced when dependencies are built.
