file(REMOVE_RECURSE
  "CMakeFiles/SimulatorTest.dir/SimulatorTest.cpp.o"
  "CMakeFiles/SimulatorTest.dir/SimulatorTest.cpp.o.d"
  "SimulatorTest"
  "SimulatorTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SimulatorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
