//===- pointer_chase.cpp - Figure 4: cascade failures on *p -------------------===//
//
// The paper's cascade scenario (§2.4): both a pointer `p` and the data it
// points to are promoted. If a store may modify `p` itself, a collision
// invalidates the *address* and the data derived from it — recovering
// needs chk.a with a recovery routine that reloads both.
//
// The demo runs twice: once on an input where the address speculation
// holds (checks free), once where *q really redirects p (chk.a branches
// into recovery and reloads the chain). Outputs stay correct either way.
//
// Build: cmake --build build && ./build/examples/pointer_chase
//
//===----------------------------------------------------------------------===//

#include "alias/AliasAnalysis.h"
#include "arch/Simulator.h"
#include "codegen/Lowering.h"
#include "codegen/RegAlloc.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "pre/Promoter.h"
#include "support/OStream.h"

using namespace srp;
using namespace srp::ir;

/// Builds the Figure 4 shape. mode (a memory cell) selects at run time
/// whether q aims at b (harmless) or at p itself (cascade collision).
static void buildProgram(Module &M) {
  Symbol *Mode = M.createGlobal("mode", TypeKind::Int);
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);

  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *QToB = B.createBlock("q_to_b");
  BasicBlock *QToP = B.createBlock("q_to_p");
  BasicBlock *Body = B.createBlock("body");
  unsigned TMode = B.emitLoad(directRef(Mode));
  B.setCondBr(Operand::temp(TMode), QToP, QToB);
  B.setBlock(QToB);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(Q), Operand::temp(TB));
  B.setBr(Body);
  B.setBlock(QToP);
  unsigned TP = B.emitAddrOf(P);
  B.emitStore(directRef(Q), Operand::temp(TP));
  B.setBr(Body);

  B.setBlock(Body);
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(A), Operand::constInt(50));
  B.emitStore(directRef(B2), Operand::constInt(60));
  unsigned T1 = B.emitLoad(indirectRef(P, TypeKind::Int)); // = *p + 1
  unsigned U1 = B.emitAssign(Opcode::Add, Operand::temp(T1),
                             Operand::constInt(1));
  // *q = &b: if q == &p this redirects p!
  unsigned TB2 = B.emitAddrOf(B2);
  B.emitStore(indirectRef(Q, TypeKind::Int), Operand::temp(TB2));
  unsigned T2 = B.emitLoad(indirectRef(P, TypeKind::Int)); // = *p + 3
  unsigned U2 = B.emitAssign(Opcode::Add, Operand::temp(T2),
                             Operand::constInt(3));
  B.emitPrint(Operand::temp(U1));
  B.emitPrint(Operand::temp(U2));
  B.setRet();
}

static void runMode(const char *Label, int64_t Mode) {
  Module M;
  buildProgram(M);
  M.function(0)->recomputeCFG();

  // Train on the harmless input (mode = 0) regardless of the run mode:
  // the profile says q never touches p, so the compiler speculates.
  interp::AliasProfile AP;
  interp::Interpreter Train(M);
  Train.setAliasProfile(&AP);
  Train.run();

  alias::SteensgaardAnalysis AA(M);
  pre::PromotionConfig Config = pre::PromotionConfig::alat();
  Config.EnableCascade = true; // allow chk.a on the address part
  pre::PromotionStats Stats =
      pre::promoteModule(M, AA, &AP, nullptr, Config);

  // Flip the run-time mode by prepending a store.
  Stmt SetMode;
  SetMode.Kind = StmtKind::Store;
  SetMode.Ref = directRef(M.symbol(0)); // mode is the first symbol
  SetMode.A = Operand::constInt(Mode);
  M.function(0)->entry()->insertBefore(0, SetMode);
  M.function(0)->recomputeCFG();

  auto MM = codegen::lowerModule(M);
  codegen::allocateRegisters(*MM);
  arch::SimResult R = arch::simulate(*MM, arch::SimConfig());

  outs() << Label << ": output = " << R.Output[0] << ", " << R.Output[1]
         << "; chk.a recoveries = " << R.Counters.ChkARecoveries
         << "; cascade checks planned = " << Stats.CascadeChecks << "\n";
}

int main() {
  outs() << "Figure 4 cascade demo: *p promoted while p itself may be "
            "redirected by *q = ...\n\n";
  runMode("no collision (q -> b)  ", 0);
  runMode("collision    (q -> p)  ", 1);
  outs() << "\nexpected: first line prints 51, 53 with zero recoveries; "
            "second prints 51, 63 after a chk.a recovery reloaded both "
            "the pointer and the data.\n";
  return 0;
}
