//===- quickstart.cpp - Build, promote, simulate in 100 lines -----------------===//
//
// The paper's Figure 1(a) scenario end to end:
//
//   a = 7;            // leading access
//   x = a + 1;        // first read
//   *p = 99;          // may alias a -- the compiler cannot tell
//   y = a + 3;        // redundant read, IF *p did not hit a
//
// We build the IR, collect an alias profile (at run time p points at b),
// run speculative register promotion, print the transformed IR (watch
// the ld.a / ld.c.nc flags appear), and simulate both versions on the
// ITA machine to compare cycles.
//
// Build: cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "alias/AliasAnalysis.h"
#include "arch/Simulator.h"
#include "codegen/Lowering.h"
#include "codegen/RegAlloc.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "pre/Promoter.h"
#include "support/OStream.h"

using namespace srp;
using namespace srp::ir;

static void buildProgram(Module &M) {
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);

  IRBuilder B(M);
  B.startFunction("main");
  // The compiler sees p take both &a and &b; at run time it holds &b.
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TB));

  B.emitStore(directRef(A), Operand::constInt(7));
  unsigned T1 = B.emitLoad(directRef(A));
  unsigned U1 = B.emitAssign(Opcode::Add, Operand::temp(T1),
                             Operand::constInt(1));
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(99));
  unsigned T2 = B.emitLoad(directRef(A));
  unsigned U2 = B.emitAssign(Opcode::Add, Operand::temp(T2),
                             Operand::constInt(3));
  B.emitPrint(Operand::temp(U1));
  B.emitPrint(Operand::temp(U2));
  B.setRet();
}

static arch::SimResult compileAndSimulate(Module &M) {
  auto MM = codegen::lowerModule(M);
  codegen::allocateRegisters(*MM);
  return arch::simulate(*MM, arch::SimConfig());
}

int main() {
  // Baseline compile (no speculation).
  Module Plain;
  buildProgram(Plain);
  Plain.function(0)->recomputeCFG();
  outs() << "--- original IR ---\n";
  printModule(Plain, outs());
  arch::SimResult Base = compileAndSimulate(Plain);

  // Speculative compile: profile on a training run, then promote.
  Module M;
  buildProgram(M);
  M.function(0)->recomputeCFG();
  interp::AliasProfile Profile;
  interp::Interpreter Train(M);
  Train.setAliasProfile(&Profile);
  Train.run();

  alias::SteensgaardAnalysis AA(M);
  pre::PromotionStats Stats = pre::promoteModule(
      M, AA, &Profile, nullptr, pre::PromotionConfig::alat());

  outs() << "\n--- after speculative register promotion ---\n";
  printModule(M, outs());
  outs() << "loads removed: " << Stats.loadsRemoved()
         << ", checks inserted: " << Stats.ChecksInserted
         << ", advanced loads: " << Stats.AdvancedLoads << "\n";

  arch::SimResult Spec = compileAndSimulate(M);
  outs() << "\n--- simulation (ITA machine, ALAT enabled) ---\n";
  outs() << "output: " << Spec.Output[0] << ", " << Spec.Output[1]
         << "  (baseline: " << Base.Output[0] << ", " << Base.Output[1]
         << ")\n";
  outs() << "cycles: " << Base.Counters.Cycles << " -> "
         << Spec.Counters.Cycles << "\n";
  outs() << "retired loads: " << Base.Counters.RetiredLoads << " -> "
         << Spec.Counters.RetiredLoads << "\n";
  outs() << "ALAT checks: " << Spec.Counters.AlatChecks << " (failed "
         << Spec.Counters.AlatCheckFailures << ")\n";
  return 0;
}
