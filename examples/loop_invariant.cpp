//===- loop_invariant.cpp - Figure 3: speculative invariant hoisting ----------===//
//
// The paper's loop scenario: `*p` is loop-invariant at run time, but the
// compiler must assume `*q = ...` inside the loop may clobber it. With
// ALAT speculation the load hoists to the preheader as ld.sa and each
// iteration pays only a free ld.c.nc check after the store (§2.3).
//
// Build: cmake --build build && ./build/examples/loop_invariant
//
//===----------------------------------------------------------------------===//

#include "alias/AliasAnalysis.h"
#include "arch/Simulator.h"
#include "codegen/Lowering.h"
#include "codegen/RegAlloc.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "pre/Promoter.h"
#include "support/OStream.h"

using namespace srp;
using namespace srp::ir;

static void buildProgram(Module &M) {
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *C = M.createGlobal("c", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *Sum = M.createGlobal("sum", TypeKind::Int);

  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *Hdr = B.createBlock("hdr");
  BasicBlock *Body = B.createBlock("body");
  BasicBlock *Exit = B.createBlock("exit");

  // Static ambiguity: both pointers could hold either address...
  unsigned TA = B.emitAddrOf(A);
  unsigned TC = B.emitAddrOf(C);
  B.emitStore(directRef(P), Operand::temp(TC));
  B.emitStore(directRef(Q), Operand::temp(TA));
  // ...but at run time p = &a and q = &c: they never collide.
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(Q), Operand::temp(TC));
  B.emitStore(directRef(A), Operand::constInt(1000));
  B.emitStore(directRef(I), Operand::constInt(0));
  B.setBr(Hdr);

  B.setBlock(Hdr);
  unsigned TI = B.emitLoad(directRef(I));
  unsigned TCmp = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                               Operand::constInt(100));
  B.setCondBr(Operand::temp(TCmp), Body, Exit);

  B.setBlock(Body);
  B.emitStore(indirectRef(Q, TypeKind::Int), Operand::temp(TI));
  unsigned TP = B.emitLoad(indirectRef(P, TypeKind::Int)); // invariant!
  unsigned TS = B.emitLoad(directRef(Sum));
  unsigned TAdd = B.emitAssign(Opcode::Add, Operand::temp(TS),
                               Operand::temp(TP));
  B.emitStore(directRef(Sum), Operand::temp(TAdd));
  unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI),
                               Operand::constInt(1));
  B.emitStore(directRef(I), Operand::temp(TInc));
  B.setBr(Hdr);

  B.setBlock(Exit);
  unsigned TOut = B.emitLoad(directRef(Sum));
  B.emitPrint(Operand::temp(TOut));
  B.setRet();
}

int main() {
  Module M;
  buildProgram(M);
  M.function(0)->recomputeCFG();

  // Train run: the edge profile proves the loop is hot and the alias
  // profile proves *q never hits *p's target.
  interp::AliasProfile AP;
  interp::EdgeProfile EP;
  interp::Interpreter Train(M);
  Train.setAliasProfile(&AP);
  Train.setEdgeProfile(&EP);
  Train.run();

  alias::SteensgaardAnalysis AA(M);
  pre::promoteModule(M, AA, &AP, &EP, pre::PromotionConfig::alat());

  outs() << "--- after promotion: note ld.sa in the preheader and the "
            "ld.c.nc check after *q = ... ---\n";
  printModule(M, outs());

  auto MM = codegen::lowerModule(M);
  codegen::allocateRegisters(*MM);
  arch::SimResult R = arch::simulate(*MM, arch::SimConfig());
  outs() << "sum = " << R.Output[0] << " (expect 100000)\n";
  outs() << "ALAT checks: " << R.Counters.AlatChecks << ", failures: "
         << R.Counters.AlatCheckFailures
         << " (the hoist is never wrong at run time)\n";
  return 0;
}
