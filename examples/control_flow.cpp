//===- control_flow.cpp - Figure 2: partial redundancy with invala.e ----------===//
//
// The paper's if-statement scenario: loads of `a` sit inside two rarely
// taken branches around a possibly-aliasing store. Inserting a load on
// the hot else-path (classic PRE speculation) would cost more than it
// saves; the ALAT strategy instead clears the entry at a dominating
// point (invala.e), makes the first occurrence an advanced load, and
// turns the second into a checking load that is free exactly when the
// first branch ran and nothing collided (§2.3, Figure 2).
//
// Build: cmake --build build && ./build/examples/control_flow
//
//===----------------------------------------------------------------------===//

#include "alias/AliasAnalysis.h"
#include "arch/Simulator.h"
#include "codegen/Lowering.h"
#include "codegen/RegAlloc.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "pre/Promoter.h"
#include "support/OStream.h"

using namespace srp;
using namespace srp::ir;

static void buildProgram(Module &M) {
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Int);

  IRBuilder B(M);
  // The diamond lives in a helper driven from a hot loop, so the edge
  // profile shows insertion would be a loss.
  Function *Work = B.startFunction("work");
  {
    BasicBlock *Then1 = B.createBlock("then1");
    BasicBlock *Join1 = B.createBlock("join1");
    BasicBlock *Then2 = B.createBlock("then2");
    BasicBlock *Join2 = B.createBlock("join2");
    unsigned TI = B.emitLoad(directRef(I));
    unsigned TM1 = B.emitAssign(Opcode::Rem, Operand::temp(TI),
                                Operand::constInt(16));
    unsigned TC1 = B.emitAssign(Opcode::CmpEq, Operand::temp(TM1),
                                Operand::constInt(0));
    B.setCondBr(Operand::temp(TC1), Then1, Join1);
    B.setBlock(Then1);
    unsigned T1 = B.emitLoad(directRef(A)); // rare first occurrence
    unsigned TAcc = B.emitLoad(directRef(Acc));
    unsigned TS1 = B.emitAssign(Opcode::Add, Operand::temp(TAcc),
                                Operand::temp(T1));
    B.emitStore(directRef(Acc), Operand::temp(TS1));
    B.setBr(Join1);
    B.setBlock(Join1);
    B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(77));
    unsigned TI2 = B.emitLoad(directRef(I));
    unsigned TM2 = B.emitAssign(Opcode::Rem, Operand::temp(TI2),
                                Operand::constInt(8));
    unsigned TC2 = B.emitAssign(Opcode::CmpEq, Operand::temp(TM2),
                                Operand::constInt(0));
    B.setCondBr(Operand::temp(TC2), Then2, Join2);
    B.setBlock(Then2);
    unsigned T2 = B.emitLoad(directRef(A)); // rare reuse
    unsigned TAcc2 = B.emitLoad(directRef(Acc));
    unsigned TS2 = B.emitAssign(Opcode::Add, Operand::temp(TAcc2),
                                Operand::temp(T2));
    B.emitStore(directRef(Acc), Operand::temp(TS2));
    B.setBr(Join2);
    B.setBlock(Join2);
    B.setRet();
  }

  B.startFunction("main");
  {
    BasicBlock *Hdr = B.createBlock("hdr");
    BasicBlock *Body = B.createBlock("body");
    BasicBlock *Exit = B.createBlock("exit");
    unsigned TA = B.emitAddrOf(A);
    unsigned TB = B.emitAddrOf(B2);
    B.emitStore(directRef(P), Operand::temp(TA));
    B.emitStore(directRef(P), Operand::temp(TB)); // runtime: p = &b
    B.emitStore(directRef(A), Operand::constInt(5));
    B.emitStore(directRef(I), Operand::constInt(0));
    B.setBr(Hdr);
    B.setBlock(Hdr);
    unsigned TI = B.emitLoad(directRef(I));
    unsigned TCmp = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                                 Operand::constInt(200));
    B.setCondBr(Operand::temp(TCmp), Body, Exit);
    B.setBlock(Body);
    B.emitCall(Work, {});
    unsigned TI2 = B.emitLoad(directRef(I));
    unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI2),
                                 Operand::constInt(1));
    B.emitStore(directRef(I), Operand::temp(TInc));
    B.setBr(Hdr);
    B.setBlock(Exit);
    unsigned TOut = B.emitLoad(directRef(Acc));
    B.emitPrint(Operand::temp(TOut));
    B.setRet();
  }
}

int main() {
  Module M;
  buildProgram(M);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();

  interp::AliasProfile AP;
  interp::EdgeProfile EP;
  interp::Interpreter Train(M);
  Train.setAliasProfile(&AP);
  Train.setEdgeProfile(&EP);
  Train.run();

  alias::SteensgaardAnalysis AA(M);
  pre::PromotionStats Stats = pre::promoteModule(
      M, AA, &AP, &EP, pre::PromotionConfig::alat());

  outs() << "--- promoted helper: note invala.e at entry, ld.a at the "
            "first occurrence, ld.c.nc at the second ---\n";
  printFunction(*M.findFunction("work"), outs());
  outs() << "invala statements: " << Stats.InvalaInserted
         << ", checking loads kept in place: " << Stats.InvalaModeLoads
         << "\n\n";

  auto MM = codegen::lowerModule(M);
  codegen::allocateRegisters(*MM);
  arch::SimResult R = arch::simulate(*MM, arch::SimConfig());
  outs() << "acc = " << R.Output[0] << "; ALAT checks "
         << R.Counters.AlatChecks << ", reloads "
         << R.Counters.AlatCheckFailures << "\n";
  outs() << "(reloads here are not collisions: the checking load simply "
            "reloads when this call's path skipped the first if — the "
            "price Figure 2's strategy pays instead of inserting loads "
            "on the hot path)\n";
  return 0;
}
